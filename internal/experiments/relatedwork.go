package experiments

import (
	"fmt"
	"io"

	"cimsa/internal/cluster"
	"cimsa/internal/clustered"
	"cimsa/internal/ppa"
)

// RelatedWorkRow is one §VI comparison point against a published TSP
// annealer system.
type RelatedWorkRow struct {
	System  string
	Problem string
	// MemoryMb is the weight memory the system needs (Mb).
	MemoryMb float64
	// Cities the system was demonstrated on.
	Cities int
	// SolveTime is the reported annealing time (seconds).
	SolveTime float64
	// Ratio is the reported optimal ratio (0 if not reported).
	Ratio float64
}

// RelatedWork reproduces the §VI comparisons: the authors' earlier
// charge-trap-transistor clustered annealer [3] (90 Mb for 1060 cities)
// and Neuro-Ising [21] (rl5934, ~1.7 optimal ratio, ~8 s Ising step),
// against this design's numbers computed from our models.
func RelatedWork(cfg Config) ([]RelatedWorkRow, error) {
	c := cfg.withDefaults()
	rows := []RelatedWorkRow{
		{System: "CTT clustered annealer [3]", Problem: "TSP-1060", MemoryMb: 90, Cities: 1060},
		{System: "Neuro-Ising [21]", Problem: "rl5934", Cities: 5934, SolveTime: 8, Ratio: 1.7},
	}
	// This design on rl5934 (quality measured, time modelled).
	in, fullN, err := scaledLoad("rl5934", c)
	if err != nil {
		return nil, err
	}
	ratio, _, err := solveRatio(in, cluster.Strategy{Kind: cluster.SemiFlex, P: 3}, clustered.ModeNoisyCIM, c.Seed+31, c.Workers)
	if err != nil {
		return nil, err
	}
	chip, err := ppa.Chip(fullN, 3, ppa.PaperProfile(fullN, 3), ppa.Tech16nm())
	if err != nil {
		return nil, err
	}
	rows = append(rows, RelatedWorkRow{
		System:    "This design (rl5934)",
		Problem:   "rl5934",
		Cities:    fullN,
		MemoryMb:  float64(chip.PhysicalWeightBits) / 1e6,
		SolveTime: chip.LatencySeconds,
		Ratio:     ratio,
	})
	// This design at the paper's largest scale, for the memory contrast
	// with [3]: 46.4 Mb for 85900 cities vs 90 Mb for 1060.
	big, err := ppa.Chip(85900, 3, ppa.PaperProfile(85900, 3), ppa.Tech16nm())
	if err != nil {
		return nil, err
	}
	rows = append(rows, RelatedWorkRow{
		System:    "This design (pla85900)",
		Problem:   "pla85900",
		Cities:    85900,
		MemoryMb:  float64(big.PhysicalWeightBits) / 1e6,
		SolveTime: big.LatencySeconds,
	})
	return rows, nil
}

// RenderRelatedWork prints the comparison.
func RenderRelatedWork(w io.Writer, rows []RelatedWorkRow) {
	fmt.Fprintf(w, "§VI related work — TSP annealer systems\n")
	fmt.Fprintf(w, "%-28s %10s %12s %14s %10s\n", "system", "cities", "memory (Mb)", "solve time", "ratio")
	for _, r := range rows {
		mem, st, ratio := "-", "-", "-"
		if r.MemoryMb > 0 {
			mem = fmt.Sprintf("%.1f", r.MemoryMb)
		}
		if r.SolveTime > 0 {
			st = fmt.Sprintf("%.3g s", r.SolveTime)
		}
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.3f", r.Ratio)
		}
		fmt.Fprintf(w, "%-28s %10d %12s %14s %10s\n", r.System, r.Cities, mem, st, ratio)
	}
}

// PrecisionRow is one weight-precision ablation point.
type PrecisionRow struct {
	Bits         int
	OptimalRatio float64
}

// AblationPrecision sweeps the stored weight precision, reproducing the
// paper's rationale for 8-bit weights: below ~6 bits the quantized
// distances can no longer rank candidate swaps and quality collapses.
func AblationPrecision(cfg Config) ([]PrecisionRow, error) {
	c := cfg.withDefaults()
	in, _, err := scaledLoad("pcb3038", c)
	if err != nil {
		return nil, err
	}
	var rows []PrecisionRow
	for _, bits := range []int{8, 6, 4, 2} {
		res, err := clustered.Solve(in, clustered.Options{
			Strategy:   cluster.Strategy{Kind: cluster.SemiFlex, P: 3},
			Seed:       c.Seed + 33,
			WeightBits: bits,
			Workers:    c.Workers,
		})
		if err != nil {
			return nil, err
		}
		ratio, err := refRatio(in, res.Length)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PrecisionRow{Bits: bits, OptimalRatio: ratio})
	}
	return rows, nil
}

// RenderPrecision prints the precision sweep.
func RenderPrecision(w io.Writer, rows []PrecisionRow) {
	fmt.Fprintf(w, "Ablation — weight precision (pcb3038)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %d-bit weights: optimal ratio %.3f\n", r.Bits, r.OptimalRatio)
	}
}
