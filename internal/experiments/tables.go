package experiments

import (
	"math"

	"cimsa/internal/cim"
	"cimsa/internal/cluster"
	"cimsa/internal/ppa"
	"cimsa/internal/tsplib"
)

// ---- Table I: cluster size / strategy exploration ----

// Table1Row is one strategy row for one dataset.
type Table1Row struct {
	Dataset  string
	Strategy cluster.Strategy
	// CapacityKB is the hardware-provisioned weight memory for the full
	// published N (blank/zero for the arbitrary baseline, as in the
	// paper).
	CapacityKB float64
	// OptimalRatio is measured by solving (at the configured scale).
	OptimalRatio float64
}

// Table1Strategies is the paper's row set: the arbitrary baseline,
// strictly fixed sizes 2 and 4, and semi-flexible 1..2, 1..3, 1..4.
func Table1Strategies() []cluster.Strategy {
	return []cluster.Strategy{
		{Kind: cluster.Arbitrary},
		{Kind: cluster.Fixed, P: 2},
		{Kind: cluster.Fixed, P: 4},
		{Kind: cluster.SemiFlex, P: 2},
		{Kind: cluster.SemiFlex, P: 3},
		{Kind: cluster.SemiFlex, P: 4},
	}
}

// Table1 reproduces the exploration on pcb3038 and rl5915.
func Table1(cfg Config) ([]Table1Row, error) {
	c := cfg.withDefaults()
	var rows []Table1Row
	for _, name := range []string{"pcb3038", "rl5915"} {
		in, fullN, err := scaledLoad(name, c)
		if err != nil {
			return nil, err
		}
		for _, s := range Table1Strategies() {
			ratio, _, err := solveRatio(in, s, 0, c.Seed+3, c.Workers)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{
				Dataset:      name,
				Strategy:     s,
				CapacityKB:   float64(cluster.ProvisionedBytes(fullN, s)) / 1000,
				OptimalRatio: ratio,
			})
		}
	}
	return rows, nil
}

// ---- Table II: PPA evaluation settings ----

// Table2Row is one pMax design point's geometry.
type Table2Row struct {
	PMax                        int
	WindowRows, WindowCols      int
	ArrayRows, ArrayCols        int
	ArrayWidthUM, ArrayHeightUM float64
}

// Table2 reproduces the array geometry table.
func Table2() ([]Table2Row, error) {
	tech := ppa.Tech16nm()
	var rows []Table2Row
	for _, pMax := range []int{2, 3, 4} {
		arr, err := ppa.ArrayModel(pMax, tech)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			PMax:          pMax,
			WindowRows:    cim.ProvisionedRows(pMax),
			WindowCols:    cim.ProvisionedCols(pMax),
			ArrayRows:     arr.Geometry.CellRows,
			ArrayCols:     arr.Geometry.CellCols,
			ArrayWidthUM:  arr.WidthUM,
			ArrayHeightUM: arr.HeightUM,
		})
	}
	return rows, nil
}

// ---- Table III: comparison with SOTA scalable annealers ----

// Table3Entry is one design column. Literature entries carry the values
// the paper quotes; NaN marks the paper's "NA" cells. "This design" is
// computed from our PPA model for pla85900 at pMax = 3.
type Table3Entry struct {
	Design     string
	Technology string
	Problem    string
	Spins      float64
	WeightBits float64
	AreaMM2    float64
	PowerMW    float64
	// Derived physical metrics.
	AreaPerBitUM2, PowerPerBitNW float64
	// Functional values (ours only; zero elsewhere).
	FunctionalSpins, FunctionalWeightBits float64
	NormAreaPerBitUM2, NormPowerPerBitNW  float64
}

// Table3 builds the comparison table.
func Table3() ([]Table3Entry, error) {
	nan := math.NaN()
	lit := []Table3Entry{
		{Design: "STATICA [18]", Technology: "65nm CMOS", Problem: "Max-Cut", Spins: 512, WeightBits: 1.31e6, AreaMM2: 12, PowerMW: 649, AreaPerBitUM2: 9, PowerPerBitNW: 495},
		{Design: "CIM-Spin [22]", Technology: "65nm CMOS", Problem: "Max-Cut", Spins: 480, WeightBits: 17.28e3, AreaMM2: 0.4, PowerMW: 0.36, AreaPerBitUM2: 23, PowerPerBitNW: 21},
		{Design: "Takemoto [23]", Technology: "40nm CMOS", Problem: "Max-Cut", Spins: 16e3 * 9, WeightBits: 0.64e6, AreaMM2: 10.8, PowerMW: nan, AreaPerBitUM2: 16.5, PowerPerBitNW: nan},
		{Design: "Yamaoka [27]", Technology: "65nm CMOS", Problem: "Max-Cut", Spins: 1024, WeightBits: 57e3, AreaMM2: 0.34, PowerMW: 1.17, AreaPerBitUM2: 6, PowerPerBitNW: 20},
		{Design: "Amorphica [25]", Technology: "40nm CMOS", Problem: "Max-Cut", Spins: 2e3, WeightBits: 8e6, AreaMM2: 9, PowerMW: 313, AreaPerBitUM2: 1.1, PowerPerBitNW: 38},
	}
	const n = 85900
	rep, err := ppa.Chip(n, 3, ppa.PaperProfile(n, 3), ppa.Tech16nm())
	if err != nil {
		return nil, err
	}
	ours := Table3Entry{
		Design:               "This design",
		Technology:           "16/14nm CMOS",
		Problem:              "TSP",
		Spins:                float64(rep.PhysicalSpins),
		WeightBits:           float64(rep.PhysicalWeightBits),
		AreaMM2:              rep.AreaMM2,
		PowerMW:              rep.PowerMW,
		AreaPerBitUM2:        rep.AreaPerWeightBitUM2(),
		PowerPerBitNW:        rep.PowerPerWeightBitNW(),
		FunctionalSpins:      ppa.FunctionalSpins(n),
		FunctionalWeightBits: ppa.FunctionalWeightBits(n),
		NormAreaPerBitUM2:    rep.NormalizedAreaPerWeightBitUM2(),
		NormPowerPerBitNW:    rep.NormalizedPowerPerWeightBitNW(),
	}
	return append(lit, ours), nil
}

// Table3Improvement returns the paper's headline >1e13x claim: the best
// competitor physical metric divided by our functionally normalized one.
func Table3Improvement(entries []Table3Entry) (area, power float64) {
	bestArea, bestPower := math.Inf(1), math.Inf(1)
	var ours Table3Entry
	for _, e := range entries {
		if e.Design == "This design" {
			ours = e
			continue
		}
		if !math.IsNaN(e.AreaPerBitUM2) && e.AreaPerBitUM2 < bestArea {
			bestArea = e.AreaPerBitUM2
		}
		if !math.IsNaN(e.PowerPerBitNW) && e.PowerPerBitNW < bestPower {
			bestPower = e.PowerPerBitNW
		}
	}
	return bestArea / ours.NormAreaPerBitUM2, bestPower / ours.NormPowerPerBitNW
}

// ---- §VI: speedup vs the Concorde CPU baseline ----

// SpeedupRow compares the modelled time-to-solution against the quoted
// Concorde exact-solver runtime, with the quality overhead paid for it.
type SpeedupRow struct {
	Dataset         string
	N               int
	ConcordeSeconds float64
	AnnealSeconds   float64
	Speedup         float64
	OptimalRatio    float64
}

// Speedup evaluates the datasets the paper quotes Concorde times for.
func Speedup(cfg Config) ([]SpeedupRow, error) {
	c := cfg.withDefaults()
	tech := ppa.Tech16nm()
	var rows []SpeedupRow
	for _, k := range tsplib.Registry {
		if k.ConcordeSeconds == 0 {
			continue
		}
		in, fullN, err := scaledLoad(k.Name, c)
		if err != nil {
			return nil, err
		}
		ratio, _, err := solveRatio(in, cluster.Strategy{Kind: cluster.SemiFlex, P: 3}, 0, c.Seed+9, c.Workers)
		if err != nil {
			return nil, err
		}
		chip, err := ppa.Chip(fullN, 3, ppa.PaperProfile(fullN, 3), tech)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedupRow{
			Dataset:         k.Name,
			N:               fullN,
			ConcordeSeconds: k.ConcordeSeconds,
			AnnealSeconds:   chip.LatencySeconds,
			Speedup:         k.ConcordeSeconds / chip.LatencySeconds,
			OptimalRatio:    ratio,
		})
	}
	return rows, nil
}
