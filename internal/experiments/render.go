package experiments

import (
	"fmt"
	"io"
	"math"
)

// RenderFig1 prints the memory-capacity scaling table.
func RenderFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintf(w, "Fig. 1 — weight memory capacity vs TSP scale (p = 3)\n")
	fmt.Fprintf(w, "%10s %14s %14s %14s\n", "N", "PBM O(N^4)", "clustered O(N^2)", "compact O(N)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %14s %14s %14s\n", r.N,
			bits(r.PBMBits), bits(r.ClusteredBits), bits(r.CompactBits))
	}
}

// bits formats a bit count with engineering units.
func bits(b float64) string {
	switch {
	case b >= 1e15:
		return fmt.Sprintf("%.2g b", b)
	case b >= 1e9:
		return fmt.Sprintf("%.1f Gb", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f Mb", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f kb", b/1e3)
	default:
		return fmt.Sprintf("%.0f b", b)
	}
}

// RenderTable1 prints the cluster-strategy exploration.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table I — exploration of cluster size and strategy\n")
	fmt.Fprintf(w, "%-10s %-16s %12s %14s\n", "dataset", "#elements", "capacity(kB)", "optimal ratio")
	for _, r := range rows {
		cap := "-"
		if r.CapacityKB > 0 {
			cap = fmt.Sprintf("%.1f", r.CapacityKB)
		}
		fmt.Fprintf(w, "%-10s %-16s %12s %14.3f\n", r.Dataset, r.Strategy, cap, r.OptimalRatio)
	}
}

// RenderFig6 prints the error-rate curve and its sigmoid fit.
func RenderFig6(w io.Writer, res Fig6Result) {
	fmt.Fprintf(w, "Fig. 6(b) — SRAM pseudo-read error rate vs V_DD (Monte Carlo)\n")
	fmt.Fprintf(w, "%8s %12s %16s\n", "VDD(mV)", "error rate", "rate @ 4x C_BL")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%8.0f %12.4f %16.4f\n", p.VDD*1000, p.Rate, p.RateHighCBL)
	}
	fmt.Fprintf(w, "sigmoid fit: max %.3f, V50 %.0f mV, slope %.0f mV\n",
		res.Fit.MaxRate, res.Fit.V50*1000, res.Fit.Slope*1000)
}

// RenderFig7 prints the four panels of Fig. 7.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig. 7(a) — optimal ratio (baseline = arbitrary clustering)\n")
	fmt.Fprintf(w, "%-10s %8s %10s %8s %8s %8s\n", "dataset", "solvedN", "baseline", "p=2", "p=3", "p=4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %10.3f", r.Dataset, r.SolvedN, r.BaselineRatio)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %8.3f", p.OptimalRatio)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFig. 7(b) — chip area (mm², full N)\n")
	fmt.Fprintf(w, "%-10s %10s %8s %8s %8s\n", "dataset", "N", "p=2", "p=3", "p=4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d", r.Dataset, r.N)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %8.2f", p.AreaMM2)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFig. 7(c) — latency (µs, compute+write breakdown, full N)\n")
	fmt.Fprintf(w, "%-10s %22s %22s %22s\n", "dataset", "p=2 (rd+wr)", "p=3 (rd+wr)", "p=4 (rd+wr)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Dataset)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %12.1f +%8.1f", p.ComputeSeconds*1e6, p.WriteSeconds*1e6)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFig. 7(d) — dynamic energy (µJ, read+write breakdown, full N)\n")
	fmt.Fprintf(w, "%-10s %22s %22s %22s\n", "dataset", "p=2 (rd+wr)", "p=3 (rd+wr)", "p=4 (rd+wr)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Dataset)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %12.1f +%8.1f", p.ReadEnergyJ*1e6, p.WriteEnergyJ*1e6)
		}
		fmt.Fprintln(w)
	}
}

// RenderTable2 prints the PPA settings table.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table II — PPA evaluation settings (16/14nm FinFET, 8-bit weight)\n")
	fmt.Fprintf(w, "%6s %12s %12s %18s\n", "p_max", "window", "array", "array area (µm)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12s %12s %18s\n", r.PMax,
			fmt.Sprintf("%dx%d", r.WindowRows, r.WindowCols),
			fmt.Sprintf("%dx%d", r.ArrayRows, r.ArrayCols),
			fmt.Sprintf("%.0fx%.0f", r.ArrayHeightUM, r.ArrayWidthUM))
	}
}

// RenderTable3 prints the SOTA comparison.
func RenderTable3(w io.Writer, entries []Table3Entry) {
	fmt.Fprintf(w, "Table III — comparison with SOTA scalable annealers\n")
	fmt.Fprintf(w, "%-16s %-12s %-8s %10s %12s %10s %10s %12s %12s\n",
		"design", "technology", "problem", "#spins", "weights", "area(mm²)", "power(mW)", "µm²/bit", "nW/bit")
	for _, e := range entries {
		fmt.Fprintf(w, "%-16s %-12s %-8s %10s %12s %10s %10s %12s %12s\n",
			e.Design, e.Technology, e.Problem,
			eng(e.Spins), bits(e.WeightBits), num(e.AreaMM2), num(e.PowerMW),
			num(e.AreaPerBitUM2), num(e.PowerPerBitNW))
		if e.FunctionalWeightBits > 0 {
			fmt.Fprintf(w, "%-16s functional: %s spins, %s; normalized: %.2g µm²/bit, %.2g nW/bit\n",
				"", eng(e.FunctionalSpins), bits(e.FunctionalWeightBits),
				e.NormAreaPerBitUM2, e.NormPowerPerBitNW)
		}
	}
	area, power := Table3Improvement(entries)
	fmt.Fprintf(w, "improvement vs best reported (functionally normalized): %.1e x area, %.1e x power\n", area, power)
}

func num(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func eng(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// RenderSpeedup prints the CPU-baseline comparison.
func RenderSpeedup(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintf(w, "§VI — convergence speedup vs Concorde CPU baseline\n")
	fmt.Fprintf(w, "%-10s %10s %14s %14s %10s %14s\n",
		"dataset", "N", "Concorde(s)", "annealer(s)", "speedup", "optimal ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %14.3g %14.3g %10.1e %14.3f\n",
			r.Dataset, r.N, r.ConcordeSeconds, r.AnnealSeconds, r.Speedup, r.OptimalRatio)
	}
}

// RenderAblations prints the design-choice ablation rows.
func RenderAblations(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation — %s\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s optimal ratio %.3f\n", r.Name, r.OptimalRatio)
	}
}

// RenderParallelism prints the chromatic-parallelism ablation.
func RenderParallelism(w io.Writer, rows []ParallelismRow) {
	fmt.Fprintf(w, "Ablation — parallel vs sequential cluster updates\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-32s %.0f cycles/iteration\n", r.Name, r.CyclesPerIteration)
	}
}
