package experiments

import (
	"fmt"
	"io"
	"math"

	"cimsa/internal/cluster"
	"cimsa/internal/clustered"
	"cimsa/internal/noise"
)

// StabilityRow summarizes run-to-run variation of one configuration
// across independently fabricated chips (different noise fabrics).
type StabilityRow struct {
	Name                  string
	Runs                  int
	MeanRatio, StdDev     float64
	BestRatio, WorstRatio float64
}

// Stability measures how much the solution quality depends on which
// physical chip (fabric seed) runs the annealer — the practical face of
// "process variation as an entropy source". The proposal stream is held
// fixed; only the fabric changes. A healthy design shows small spread;
// the greedy ablation shows zero spread (it never reads the noisy bits).
func Stability(cfg Config, runs int) ([]StabilityRow, error) {
	c := cfg.withDefaults()
	if runs <= 0 {
		runs = 5
	}
	in, _, err := scaledLoad("pcb3038", c)
	if err != nil {
		return nil, err
	}
	strategy := cluster.Strategy{Kind: cluster.SemiFlex, P: 3}
	configs := []struct {
		name string
		mode clustered.Mode
	}{
		{"noisy-cim across chips", clustered.ModeNoisyCIM},
		{"greedy (fabric-independent)", clustered.ModeGreedy},
	}
	var rows []StabilityRow
	for _, cf := range configs {
		var ratios []float64
		for run := 0; run < runs; run++ {
			res, err := clustered.Solve(in, clustered.Options{
				Strategy: strategy,
				Mode:     cf.mode,
				Seed:     c.Seed + 23, // fixed proposal stream
				Fabric:   noise.NewFabric(1000 + uint64(run)),
				Workers:  c.Workers,
			})
			if err != nil {
				return nil, err
			}
			ratio, err := refRatio(in, res.Length)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, ratio)
		}
		rows = append(rows, summarize(cf.name, ratios))
	}
	return rows, nil
}

func summarize(name string, ratios []float64) StabilityRow {
	row := StabilityRow{Name: name, Runs: len(ratios), BestRatio: math.Inf(1)}
	var sum float64
	for _, r := range ratios {
		sum += r
		if r < row.BestRatio {
			row.BestRatio = r
		}
		if r > row.WorstRatio {
			row.WorstRatio = r
		}
	}
	row.MeanRatio = sum / float64(len(ratios))
	var varSum float64
	for _, r := range ratios {
		d := r - row.MeanRatio
		varSum += d * d
	}
	if len(ratios) > 1 {
		row.StdDev = math.Sqrt(varSum / float64(len(ratios)-1))
	}
	return row
}

// RenderStability prints the chip-to-chip variation table.
func RenderStability(w io.Writer, rows []StabilityRow) {
	fmt.Fprintf(w, "Stability — solution quality across fabricated chips (pcb3038)\n")
	fmt.Fprintf(w, "%-30s %6s %10s %10s %10s %10s\n", "config", "runs", "mean", "stddev", "best", "worst")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %6d %10.3f %10.4f %10.3f %10.3f\n",
			r.Name, r.Runs, r.MeanRatio, r.StdDev, r.BestRatio, r.WorstRatio)
	}
}
