package experiments

import (
	"fmt"
	"io"

	"cimsa/internal/cluster"
	"cimsa/internal/clustered"
	"cimsa/internal/noise"
)

// IterationsRow is one point of the iterations-per-level sweep.
type IterationsRow struct {
	Iterations   int
	OptimalRatio float64
	// HardwareCyclesPerLevel is the modelled compute cycle cost.
	HardwareCyclesPerLevel int
}

// AblationIterations sweeps the per-level iteration budget around the
// paper's 400, scaling the (V_DD, #LSB) schedule's epoch length so the
// full annealing trajectory is always traversed. It shows the knee the
// paper's choice sits on: fewer iterations leave quality on the table,
// more buy little.
func AblationIterations(cfg Config) ([]IterationsRow, error) {
	c := cfg.withDefaults()
	in, _, err := scaledLoad("rl5915", c)
	if err != nil {
		return nil, err
	}
	var rows []IterationsRow
	for _, iters := range []int{100, 200, 400, 800} {
		sched := noise.PaperSchedule()
		sched.EpochIters = iters / sched.Epochs
		res, err := clustered.Solve(in, clustered.Options{
			Strategy: cluster.Strategy{Kind: cluster.SemiFlex, P: 3},
			Schedule: sched,
			Seed:     c.Seed + 37,
			Workers:  c.Workers,
		})
		if err != nil {
			return nil, err
		}
		ratio, err := refRatio(in, res.Length)
		if err != nil {
			return nil, err
		}
		rows = append(rows, IterationsRow{
			Iterations:             sched.TotalIters(),
			OptimalRatio:           ratio,
			HardwareCyclesPerLevel: sched.TotalIters() * 10,
		})
	}
	return rows, nil
}

// RenderIterations prints the sweep.
func RenderIterations(w io.Writer, rows []IterationsRow) {
	fmt.Fprintf(w, "Ablation — iterations per level (rl5915; paper uses 400)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %4d iterations (%5d cycles/level): optimal ratio %.3f\n",
			r.Iterations, r.HardwareCyclesPerLevel, r.OptimalRatio)
	}
}
