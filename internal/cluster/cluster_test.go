package cluster

import (
	"math"
	"testing"

	"cimsa/internal/geom"
	"cimsa/internal/tsplib"
)

func cities(n int, style tsplib.Style, seed uint64) []geom.Point {
	return tsplib.Generate("cl-test", n, style, seed).Cities
}

func TestStrategyValidate(t *testing.T) {
	valid := []Strategy{
		{Kind: Arbitrary},
		{Kind: Fixed, P: 2},
		{Kind: Fixed, P: 4},
		{Kind: SemiFlex, P: 3},
		{Kind: SemiFlex, P: 8},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
	invalid := []Strategy{
		{Kind: Fixed, P: 1},
		{Kind: Fixed, P: 9},
		{Kind: SemiFlex, P: 0},
		{Kind: Kind(42), P: 3},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%v accepted", s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if got := (Strategy{Kind: SemiFlex, P: 3}).String(); got != "semiflex-1..3" {
		t.Errorf("semiflex string = %q", got)
	}
	if got := (Strategy{Kind: Fixed, P: 2}).String(); got != "fixed-2" {
		t.Errorf("fixed string = %q", got)
	}
	if got := (Strategy{Kind: Arbitrary}).String(); got != "arbitrary" {
		t.Errorf("arbitrary string = %q", got)
	}
}

func TestBuildAllStrategies(t *testing.T) {
	pts := cities(500, tsplib.StyleClustered, 1)
	for _, s := range []Strategy{
		{Kind: Arbitrary},
		{Kind: Fixed, P: 2},
		{Kind: Fixed, P: 4},
		{Kind: SemiFlex, P: 2},
		{Kind: SemiFlex, P: 3},
		{Kind: SemiFlex, P: 4},
	} {
		h, err := Build(pts, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(h.Top()) > TopThreshold {
			t.Fatalf("%v: top level has %d nodes", s, len(h.Top()))
		}
		if h.NumLevels() < 2 {
			t.Fatalf("%v: only %d levels for 500 cities", s, h.NumLevels())
		}
	}
}

func TestBuildLeafLevelCoversAllCities(t *testing.T) {
	pts := cities(137, tsplib.StyleUniform, 2)
	h, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(pts))
	for _, n := range h.Levels[0] {
		if !n.IsLeaf() {
			t.Fatal("level 0 has non-leaf")
		}
		if seen[n.City] {
			t.Fatalf("city %d appears twice", n.City)
		}
		seen[n.City] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("city %d missing from leaf level", c)
		}
	}
}

func TestFixedSizesExact(t *testing.T) {
	pts := cities(300, tsplib.StyleUniform, 3)
	h, err := Build(pts, Strategy{Kind: Fixed, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All clusters except possibly the last of each level have exactly 4
	// children.
	for li := 1; li < h.NumLevels(); li++ {
		smaller := 0
		for _, n := range h.Levels[li] {
			if len(n.Children) != 4 {
				smaller++
				if len(n.Children) > 4 {
					t.Fatalf("fixed-4 cluster with %d children", len(n.Children))
				}
			}
		}
		if smaller > 1 {
			t.Fatalf("level %d has %d non-full fixed clusters", li, smaller)
		}
	}
}

func TestSemiFlexSizesWithinRange(t *testing.T) {
	pts := cities(400, tsplib.StyleClustered, 4)
	h, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	for li := 1; li < h.NumLevels(); li++ {
		for _, n := range h.Levels[li] {
			if len(n.Children) < 1 || len(n.Children) > 3 {
				t.Fatalf("semiflex-3 cluster with %d children", len(n.Children))
			}
		}
	}
}

func TestArbitraryTargetsHalfCount(t *testing.T) {
	pts := cities(600, tsplib.StyleUniform, 5)
	h, err := Build(pts, Strategy{Kind: Arbitrary})
	if err != nil {
		t.Fatal(err)
	}
	l1 := len(h.Levels[1])
	// Should land near 300 clusters (within 20%).
	if l1 < 240 || l1 > 360 {
		t.Fatalf("arbitrary produced %d clusters for 600 elements", l1)
	}
}

func TestCentroidsAreWeightedMeans(t *testing.T) {
	pts := cities(64, tsplib.StyleUniform, 6)
	h, err := Build(pts, Strategy{Kind: SemiFlex, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *Node) (sx, sy float64, count int)
	walk = func(n *Node) (float64, float64, int) {
		if n.IsLeaf() {
			return n.Centroid.X, n.Centroid.Y, 1
		}
		var sx, sy float64
		var cnt int
		for _, c := range n.Children {
			x, y, k := walk(c)
			sx += x
			sy += y
			cnt += k
		}
		return sx, sy, cnt
	}
	for _, n := range h.Top() {
		sx, sy, cnt := walk(n)
		if cnt != n.Leaves {
			t.Fatalf("leaf count %d, node says %d", cnt, n.Leaves)
		}
		wantX, wantY := sx/float64(cnt), sy/float64(cnt)
		if math.Abs(n.Centroid.X-wantX) > 1e-9 || math.Abs(n.Centroid.Y-wantY) > 1e-9 {
			t.Fatalf("centroid %v, want (%v,%v)", n.Centroid, wantX, wantY)
		}
	}
}

func TestClustersAreSpatiallyCoherent(t *testing.T) {
	// Mean intra-cluster pairwise distance should be far below the board
	// scale for a clustered build.
	pts := cities(1000, tsplib.StyleUniform, 7)
	h, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := geom.Bounds(pts)
	scale := math.Hypot(b.Width(), b.Height())
	var sum float64
	var count int
	for _, n := range h.Levels[1] {
		for i := 0; i < len(n.Children); i++ {
			for j := i + 1; j < len(n.Children); j++ {
				sum += geom.Exact.Dist(n.Children[i].Centroid, n.Children[j].Centroid)
				count++
			}
		}
	}
	if count == 0 {
		t.Skip("all singleton clusters")
	}
	if mean := sum / float64(count); mean > scale/20 {
		t.Fatalf("mean intra-cluster distance %v vs board scale %v", mean, scale)
	}
}

func TestBuildDeterministic(t *testing.T) {
	pts := cities(200, tsplib.StylePCB, 8)
	a, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLevels() != b.NumLevels() {
		t.Fatal("level counts differ")
	}
	for li := range a.Levels {
		if len(a.Levels[li]) != len(b.Levels[li]) {
			t.Fatalf("level %d sizes differ", li)
		}
		for i := range a.Levels[li] {
			if a.Levels[li][i].Centroid != b.Levels[li][i].Centroid {
				t.Fatalf("level %d node %d differs", li, i)
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	pts := cities(100, tsplib.StyleUniform, 9)
	if _, err := Build(pts, Strategy{Kind: Fixed, P: 1}); err == nil {
		t.Fatal("invalid strategy accepted")
	}
	if _, err := Build(pts[:2], Strategy{Kind: SemiFlex, P: 3}); err == nil {
		t.Fatal("two-city input accepted")
	}
}

func TestProvisionedWeightsMatchPaperTable1(t *testing.T) {
	// Table I capacity column, pcb3038 (N=3038) in kB (8-bit weights):
	// fixed-2: 48.6, fixed-4: 291.8, semiflex-2: 64.8, semiflex-3: 205.1,
	// semiflex-4: 466.9.
	n := 3038
	cases := []struct {
		s      Strategy
		wantKB float64
	}{
		{Strategy{Kind: Fixed, P: 2}, 48.6},
		{Strategy{Kind: Fixed, P: 4}, 291.8},
		{Strategy{Kind: SemiFlex, P: 2}, 64.8},
		{Strategy{Kind: SemiFlex, P: 3}, 205.1},
		{Strategy{Kind: SemiFlex, P: 4}, 466.9},
	}
	for _, c := range cases {
		gotKB := float64(ProvisionedBytes(n, c.s)) / 1000
		if math.Abs(gotKB-c.wantKB)/c.wantKB > 0.01 {
			t.Errorf("%v: %v kB, paper says %v kB", c.s, gotKB, c.wantKB)
		}
	}
}

func TestProvisionedWeightsRL5915(t *testing.T) {
	// Table I, rl5915 column.
	n := 5915
	cases := []struct {
		s      Strategy
		wantKB float64
	}{
		{Strategy{Kind: Fixed, P: 2}, 94.7},
		{Strategy{Kind: Fixed, P: 4}, 567.9},
		{Strategy{Kind: SemiFlex, P: 2}, 126.2},
		{Strategy{Kind: SemiFlex, P: 3}, 399.3},
		{Strategy{Kind: SemiFlex, P: 4}, 908.5},
	}
	for _, c := range cases {
		gotKB := float64(ProvisionedBytes(n, c.s)) / 1000
		if math.Abs(gotKB-c.wantKB)/c.wantKB > 0.01 {
			t.Errorf("%v: %v kB, paper says %v kB", c.s, gotKB, c.wantKB)
		}
	}
}

func TestProvisionedWeightsPla85900(t *testing.T) {
	// The paper's headline: pla85900 with p_max=3 needs 46.4 Mb.
	bits := 8 * ProvisionedWeights(85900, Strategy{Kind: SemiFlex, P: 3})
	gotMb := float64(bits) / 1e6
	if math.Abs(gotMb-46.4) > 0.3 {
		t.Fatalf("pla85900 semiflex-3 = %v Mb, paper says 46.4 Mb", gotMb)
	}
}

func TestArbitraryProvisioningIsZero(t *testing.T) {
	if got := ProvisionedWeights(1000, Strategy{Kind: Arbitrary}); got != 0 {
		t.Fatalf("arbitrary provisioning = %d, want 0", got)
	}
}

func TestHierarchyLevelsShrinkGeometrically(t *testing.T) {
	pts := cities(2000, tsplib.StyleUniform, 10)
	h, err := Build(pts, Strategy{Kind: SemiFlex, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	for li := 1; li < h.NumLevels(); li++ {
		ratio := float64(len(h.Levels[li])) / float64(len(h.Levels[li-1]))
		if ratio > 0.75 {
			t.Fatalf("level %d shrank only by %.2f", li, ratio)
		}
	}
}

func BenchmarkBuildSemiFlex3_10k(b *testing.B) {
	pts := cities(10000, tsplib.StyleClustered, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, Strategy{Kind: SemiFlex, P: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
