package cluster

import (
	"testing"
	"testing/quick"

	"cimsa/internal/tsplib"
)

// TestPropertyHierarchyPartitions checks, across random instance sizes,
// styles and strategies, that every hierarchy level is an exact
// partition of the cities and that Validate agrees.
func TestPropertyHierarchyPartitions(t *testing.T) {
	styles := []tsplib.Style{tsplib.StyleUniform, tsplib.StylePCB, tsplib.StyleClustered}
	strategies := []Strategy{
		{Kind: Arbitrary},
		{Kind: Fixed, P: 2},
		{Kind: Fixed, P: 3},
		{Kind: SemiFlex, P: 2},
		{Kind: SemiFlex, P: 3},
		{Kind: SemiFlex, P: 4},
	}
	f := func(nRaw uint16, styleSel, stratSel, seed uint8) bool {
		n := int(nRaw%800) + 12
		in := tsplib.Generate("prop", n, styles[int(styleSel)%len(styles)], uint64(seed))
		s := strategies[int(stratSel)%len(strategies)]
		h, err := Build(in.Cities, s)
		if err != nil {
			return false
		}
		if err := h.Validate(); err != nil {
			return false
		}
		// Walking down from the top must reach every city exactly once.
		seen := make([]bool, n)
		var walk func(node *Node) bool
		walk = func(node *Node) bool {
			if node.IsLeaf() {
				if seen[node.City] {
					return false
				}
				seen[node.City] = true
				return true
			}
			for _, c := range node.Children {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		for _, top := range h.Top() {
			if !walk(top) {
				return false
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLeafCountsConsistent checks Node.Leaves equals the real
// subtree size at every level for random builds.
func TestPropertyLeafCountsConsistent(t *testing.T) {
	f := func(nRaw uint16, seed uint8) bool {
		n := int(nRaw%500) + 20
		in := tsplib.Generate("prop2", n, tsplib.StyleClustered, uint64(seed))
		h, err := Build(in.Cities, Strategy{Kind: SemiFlex, P: 3})
		if err != nil {
			return false
		}
		var count func(node *Node) int
		count = func(node *Node) int {
			if node.IsLeaf() {
				return 1
			}
			total := 0
			for _, c := range node.Children {
				total += count(c)
			}
			return total
		}
		for _, level := range h.Levels {
			for _, node := range level {
				if count(node) != node.Leaves {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
