// Package cluster builds the hierarchical clustering the annealer runs
// on: cities are grouped bottom-up into clusters of a few elements per
// level until only a handful of top-level super-clusters remain
// (Fig. 4 of the paper). Three sizing strategies from Table I are
// provided:
//
//   - Arbitrary: only the number of clusters per level is constrained
//     (half the element count, so clusters average two elements); sizes
//     are free. Best quality, but a hardware-reconfigurability nightmare,
//     so it serves as the quality baseline.
//   - Fixed: every cluster holds exactly P elements. Cheapest hardware,
//     worst quality.
//   - SemiFlex: cluster sizes range 1..PMax with average (1+PMax)/2. The
//     paper's compromise: hardware provisions 2N/(1+PMax) windows of
//     PMax² columns with some redundancy.
//
// Elements are ordered along a Hilbert curve and segmented with dynamic
// programming, so clusters are spatially coherent and construction is
// O(n log n).
package cluster

import (
	"fmt"
	"math"

	"cimsa/internal/geom"
)

// Kind selects a clustering strategy family.
type Kind int

const (
	// KindUnset is the zero value; callers interpret it as "use the
	// default strategy". It is never valid to build with.
	KindUnset Kind = iota
	// Arbitrary constrains only the cluster count (elements/2 per level).
	Arbitrary
	// Fixed uses exactly P elements per cluster.
	Fixed
	// SemiFlex uses 1..P elements per cluster.
	SemiFlex
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUnset:
		return "unset"
	case Arbitrary:
		return "arbitrary"
	case Fixed:
		return "fixed"
	case SemiFlex:
		return "semiflex"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Strategy is a clustering policy: a kind plus its size parameter.
type Strategy struct {
	Kind Kind
	// P is the exact size for Fixed, the maximum size for SemiFlex, and
	// ignored for Arbitrary.
	P int
}

// Validate checks the parameter ranges.
func (s Strategy) Validate() error {
	switch s.Kind {
	case Arbitrary:
		return nil
	case Fixed, SemiFlex:
		if s.P < 2 {
			return fmt.Errorf("cluster: strategy %v needs P >= 2, got %d", s.Kind, s.P)
		}
		if s.P > 8 {
			return fmt.Errorf("cluster: P = %d unsupported (window size grows as P^4)", s.P)
		}
		return nil
	default:
		return fmt.Errorf("cluster: unknown kind %d", int(s.Kind))
	}
}

// String formats the strategy like the paper's Table I rows.
func (s Strategy) String() string {
	switch s.Kind {
	case Arbitrary:
		return "arbitrary"
	case Fixed:
		return fmt.Sprintf("fixed-%d", s.P)
	case SemiFlex:
		return fmt.Sprintf("semiflex-1..%d", s.P)
	default:
		return s.Kind.String()
	}
}

// MaxElements returns the largest cluster size the strategy can produce.
func (s Strategy) MaxElements() int {
	switch s.Kind {
	case Arbitrary:
		return arbitraryMaxSize
	default:
		return s.P
	}
}

// arbitraryMaxSize caps cluster sizes for the Arbitrary strategy so the
// per-cluster annealing state stays small; the Lagrangian segmentation
// rarely reaches it.
const arbitraryMaxSize = 8

// Node is an element of the hierarchy: a city at level 0, a cluster of
// lower-level nodes above.
type Node struct {
	// Children are the nodes grouped into this one; nil for a leaf.
	Children []*Node
	// City is the city index for leaves, -1 otherwise.
	City int
	// Centroid is the mean position of all leaf cities below.
	Centroid geom.Point
	// Leaves is the number of cities in the subtree.
	Leaves int
}

// IsLeaf reports whether the node is a single city.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Hierarchy is the full clustering: Levels[0] holds one leaf per city in
// Hilbert order; each higher level groups the one below; the last level
// has at most TopThreshold nodes.
type Hierarchy struct {
	Strategy Strategy
	Levels   [][]*Node
}

// TopThreshold is the element count at which clustering stops; the top
// level is solved directly by the annealer.
const TopThreshold = 10

// Build constructs the hierarchy for the given city positions.
func Build(cities []geom.Point, s Strategy) (*Hierarchy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(cities) < 3 {
		return nil, fmt.Errorf("cluster: need >= 3 cities, got %d", len(cities))
	}
	// Level 0: leaves in Hilbert order.
	order := geom.HilbertSort(cities)
	level := make([]*Node, len(cities))
	for i, ci := range order {
		level[i] = &Node{City: ci, Centroid: cities[ci], Leaves: 1}
	}
	h := &Hierarchy{Strategy: s, Levels: [][]*Node{level}}
	for len(level) > TopThreshold {
		next := groupLevel(level, s)
		if len(next) >= len(level) {
			return nil, fmt.Errorf("cluster: level failed to shrink (%d -> %d)", len(level), len(next))
		}
		h.Levels = append(h.Levels, next)
		level = next
	}
	return h, nil
}

// NumLevels returns the number of levels including the leaf level.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// Top returns the highest (smallest) level.
func (h *Hierarchy) Top() []*Node { return h.Levels[len(h.Levels)-1] }

// Validate checks structural invariants: every level partitions the one
// below, leaf counts add up, and cluster sizes respect the strategy.
func (h *Hierarchy) Validate() error {
	n := len(h.Levels[0])
	for li, level := range h.Levels {
		total := 0
		for _, node := range level {
			total += node.Leaves
			if li == 0 {
				if !node.IsLeaf() {
					return fmt.Errorf("cluster: level 0 node is not a leaf")
				}
				continue
			}
			if node.IsLeaf() {
				return fmt.Errorf("cluster: level %d contains a bare leaf", li)
			}
			size := len(node.Children)
			switch h.Strategy.Kind {
			case Fixed:
				// The final cluster of a level may be a remainder.
				if size > h.Strategy.P {
					return fmt.Errorf("cluster: fixed-%d cluster has %d elements", h.Strategy.P, size)
				}
			case SemiFlex:
				if size < 1 || size > h.Strategy.P {
					return fmt.Errorf("cluster: semiflex-%d cluster has %d elements", h.Strategy.P, size)
				}
			case Arbitrary:
				if size < 1 || size > arbitraryMaxSize {
					return fmt.Errorf("cluster: arbitrary cluster has %d elements", size)
				}
			}
		}
		if total != n {
			return fmt.Errorf("cluster: level %d covers %d leaves, want %d", li, total, n)
		}
	}
	return nil
}

// groupLevel clusters one level into the next according to the strategy.
// Elements keep their (already spatial) order; they were produced either
// by the Hilbert sort (level 0) or by previous groupings of sorted
// elements, so re-sorting by centroid keeps locality.
func groupLevel(level []*Node, s Strategy) []*Node {
	pts := make([]geom.Point, len(level))
	for i, n := range level {
		pts[i] = n.Centroid
	}
	order := geom.HilbertSort(pts)
	sorted := make([]*Node, len(level))
	for i, oi := range order {
		sorted[i] = level[oi]
	}
	var sizes []int
	switch s.Kind {
	case Fixed:
		sizes = fixedSizes(len(sorted), s.P)
	case SemiFlex:
		// The paper's semi-flexible strategy: sizes 1..P averaging
		// (1+P)/2, i.e. 2N/(1+P) clusters per level.
		sizes = targetSizes(sorted, s.P, (2*len(sorted)+s.P)/(1+s.P))
	case Arbitrary:
		sizes = targetSizes(sorted, arbitraryMaxSize, (len(sorted)+1)/2)
	}
	next := make([]*Node, 0, len(sizes))
	idx := 0
	for _, sz := range sizes {
		children := sorted[idx : idx+sz]
		idx += sz
		next = append(next, makeParent(children))
	}
	return next
}

// makeParent creates a cluster node over children.
func makeParent(children []*Node) *Node {
	own := make([]*Node, len(children))
	copy(own, children)
	leaves := 0
	var sx, sy float64
	for _, c := range own {
		leaves += c.Leaves
		sx += c.Centroid.X * float64(c.Leaves)
		sy += c.Centroid.Y * float64(c.Leaves)
	}
	return &Node{
		Children: own,
		City:     -1,
		Centroid: geom.Point{X: sx / float64(leaves), Y: sy / float64(leaves)},
		Leaves:   leaves,
	}
}

// fixedSizes splits n elements into chunks of exactly p (with one
// remainder chunk if p does not divide n).
func fixedSizes(n, p int) []int {
	var sizes []int
	for n >= p {
		sizes = append(sizes, p)
		n -= p
	}
	if n > 0 {
		sizes = append(sizes, n)
	}
	return sizes
}

// dpSegment chooses segment sizes 1..pMax over the sorted elements to
// minimize total within-segment path length plus lambda per segment
// (lambda = 0 leaves the count free). Returns the sizes in order.
func dpSegment(sorted []*Node, pMax int, lambda float64) []int {
	n := len(sorted)
	// gap[i] = distance between consecutive sorted centroids i-1, i.
	gap := make([]float64, n)
	for i := 1; i < n; i++ {
		gap[i] = geom.Exact.Dist(sorted[i-1].Centroid, sorted[i].Centroid)
	}
	// prefix[i] = sum of gap[1..i].
	prefix := make([]float64, n+1)
	for i := 1; i < n; i++ {
		prefix[i+1] = prefix[i] + gap[i]
	}
	// best[i] = min cost to segment the first i elements.
	best := make([]float64, n+1)
	choice := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = math.Inf(1)
		for sz := 1; sz <= pMax && sz <= i; sz++ {
			// Segment covers elements [i-sz, i); its internal path length
			// is prefix[i] - prefix[i-sz+1].
			intra := prefix[i] - prefix[i-sz+1]
			cost := best[i-sz] + intra + lambda
			if cost < best[i] {
				best[i] = cost
				choice[i] = sz
			}
		}
	}
	// Backtrack.
	var rev []int
	for i := n; i > 0; i -= choice[i] {
		rev = append(rev, choice[i])
	}
	sizes := make([]int, len(rev))
	for i := range rev {
		sizes[i] = rev[len(rev)-1-i]
	}
	return sizes
}

// countSegments runs dpSegment and returns only the segment count.
func countSegments(sorted []*Node, pMax int, lambda float64) int {
	return len(dpSegment(sorted, pMax, lambda))
}

// targetSizes picks segment sizes 1..maxSize whose count lands near
// target, using a Lagrangian binary search on the per-segment penalty:
// increasing lambda merges more aggressively and monotonically lowers
// the segment count.
func targetSizes(sorted []*Node, maxSize, target int) []int {
	n := len(sorted)
	minPossible := (n + maxSize - 1) / maxSize
	if target < minPossible {
		target = minPossible
	}
	// With lambda larger than the total path length, merging always pays,
	// so the count reaches its minimum; lambda 0 gives all singletons.
	var total float64
	for i := 1; i < n; i++ {
		total += geom.Exact.Dist(sorted[i-1].Centroid, sorted[i].Centroid)
	}
	lo, hi := 0.0, total+1
	for iter := 0; iter < 50; iter++ {
		mid := (lo + hi) / 2
		if countSegments(sorted, maxSize, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dpSegment(sorted, maxSize, hi)
}

// ProvisionedWeights returns the number of 8-bit weights the hardware
// provisions for an n-city problem under the strategy, following the
// paper's capacity formulas (§V.A): windows of (p²+2p)·p² weights, one
// per bottom-level cluster.
func ProvisionedWeights(n int, s Strategy) int {
	switch s.Kind {
	case Fixed:
		p := s.P
		windows := (n + p - 1) / p
		return (p*p + 2*p) * p * p * windows
	case SemiFlex:
		p := s.P
		windows := 2 * n / (1 + p)
		return (p*p + 2*p) * p * p * windows
	case Arbitrary:
		// Not hardware-realizable; reported as zero like the blank
		// capacity cells in Table I.
		return 0
	default:
		return 0
	}
}

// ProvisionedBytes is ProvisionedWeights in bytes (8-bit weights).
func ProvisionedBytes(n int, s Strategy) int { return ProvisionedWeights(n, s) }
