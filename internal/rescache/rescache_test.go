package rescache

import (
	"fmt"
	"sync"
	"testing"

	"cimsa/internal/problem"
)

func res(instance string, objective float64) *problem.Result {
	return &problem.Result{Problem: "tsp", Instance: instance, N: 4, Objective: objective}
}

func TestLeaderHitLifecycle(t *testing.T) {
	c := New(4, 0)
	r, role := c.Acquire("k1", nil)
	if role != RoleLeader || r != nil {
		t.Fatalf("first Acquire = (%v, %s), want leader", r, role)
	}
	want := res("a", 42)
	c.Complete("k1", want)
	got, role := c.Acquire("k1", nil)
	if role != RoleHit || got != want {
		t.Fatalf("second Acquire = (%v, %s), want hit with the stored result", got, role)
	}
	if n, b := c.Stats(); n != 1 || b <= 0 {
		t.Fatalf("Stats = (%d, %d)", n, b)
	}
}

func TestWaiterCoalescing(t *testing.T) {
	c := New(4, 0)
	if _, role := c.Acquire("k", nil); role != RoleLeader {
		t.Fatal("want leader")
	}
	var mu sync.Mutex
	var got []*problem.Result
	var oks []bool
	waiter := func(r *problem.Result, ok bool) {
		mu.Lock()
		got = append(got, r)
		oks = append(oks, ok)
		mu.Unlock()
	}
	for i := 0; i < 3; i++ {
		if _, role := c.Acquire("k", waiter); role != RoleWaiter {
			t.Fatalf("concurrent Acquire %d: want waiter, got %s", i, role)
		}
	}
	want := res("x", 7)
	c.Complete("k", want)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("%d waiters notified, want 3", len(got))
	}
	for i := range got {
		if got[i] != want || !oks[i] {
			t.Fatalf("waiter %d got (%v, %v)", i, got[i], oks[i])
		}
	}
}

func TestAbortNotifiesWaitersAndCachesNothing(t *testing.T) {
	c := New(4, 0)
	c.Acquire("k", nil)
	notified := false
	c.Acquire("k", func(r *problem.Result, ok bool) {
		if r != nil || ok {
			t.Errorf("abort waiter got (%v, %v)", r, ok)
		}
		notified = true
	})
	c.Abort("k")
	if !notified {
		t.Fatal("waiter not notified on Abort")
	}
	if n, _ := c.Stats(); n != 0 {
		t.Fatal("Abort cached an entry")
	}
	// The key is free again: the next Acquire leads a fresh flight.
	if _, role := c.Acquire("k", nil); role != RoleLeader {
		t.Fatal("key still held after Abort")
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New(2, 0)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Acquire(k, nil)
		c.Complete(k, res(k, float64(i)))
	}
	if n, _ := c.Stats(); n != 2 {
		t.Fatalf("entries = %d, want 2", n)
	}
	// k0 was least recently used and must be gone.
	if _, role := c.Acquire("k0", nil); role != RoleLeader {
		t.Fatal("k0 survived eviction")
	}
	c.Abort("k0")
	if _, role := c.Acquire("k2", nil); role != RoleHit {
		t.Fatal("k2 evicted too early")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(2, 0)
	for _, k := range []string{"a", "b"} {
		c.Acquire(k, nil)
		c.Complete(k, res(k, 1))
	}
	c.Acquire("a", nil) // hit: refreshes a
	c.Acquire("c", nil)
	c.Complete("c", res("c", 3)) // evicts b, not a
	if _, role := c.Acquire("a", nil); role != RoleHit {
		t.Fatal("recently-hit entry was evicted")
	}
	if _, role := c.Acquire("b", nil); role != RoleLeader {
		t.Fatal("LRU entry b survived")
	}
}

func TestByteBound(t *testing.T) {
	small := res("s", 1)
	size := resultSize(small)
	c := New(100, 2*size)
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Acquire(k, nil)
		c.Complete(k, res("s", float64(i)))
	}
	if n, b := c.Stats(); b > 2*size || n > 2 {
		t.Fatalf("byte bound violated: %d entries, %d bytes (max %d)", n, b, 2*size)
	}
	// A result larger than the whole byte budget is served to waiters
	// but never stored.
	big := res(string(make([]byte, int(4*size))), 9)
	c.Acquire("big", nil)
	c.Complete("big", big)
	if _, role := c.Acquire("big", nil); role != RoleHit {
		// Not cached: fine — must become a fresh leader, not a waiter.
		if role != RoleLeader {
			t.Fatalf("oversized entry Acquire role = %s", role)
		}
		c.Abort("big")
	} else {
		t.Fatal("oversized result was cached past the byte budget")
	}
}

func TestConcurrentAcquireSingleLeader(t *testing.T) {
	c := New(16, 0)
	const goroutines = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	leaders := 0
	notified := 0
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, role := c.Acquire("shared", func(*problem.Result, bool) {
				mu.Lock()
				notified++
				mu.Unlock()
			})
			switch role {
			case RoleLeader:
				mu.Lock()
				leaders++
				mu.Unlock()
				c.Complete("shared", res("shared", 5))
			case RoleHit:
				if r == nil {
					t.Error("hit with nil result")
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if leaders != 1 {
		t.Fatalf("%d leaders for one key, want exactly 1", leaders)
	}
}
