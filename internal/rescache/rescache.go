// Package rescache is a bounded, exact-match result cache for the
// solve service, with single-flight coalescing of concurrent identical
// submissions.
//
// Caching is correct (not approximate) because the solvers behind the
// service are bit-deterministic: for a fixed (instance hash, design
// point, seed) the result is byte-identical on every run and at every
// worker count. The serve layer builds keys from
// problem.Task.InstanceHash(), problem.Task.DesignHash() (which folds
// in a per-backend solver-version tag) and the task label, so a hit
// returns exactly the bytes a fresh solve would have produced, and
// bumping a backend's version tag invalidates its cached results.
package rescache

import (
	"container/list"
	"encoding/json"
	"sync"

	"cimsa/internal/problem"
)

// Role classifies the caller's duty after Acquire.
type Role int

const (
	// RoleLeader: no cached entry and no in-flight solve. The caller
	// must solve and then call exactly one of Complete or Abort.
	RoleLeader Role = iota
	// RoleHit: the returned result came straight from the cache.
	RoleHit
	// RoleWaiter: an identical solve is in flight; the registered
	// waiter callback fires exactly once when the leader finishes.
	RoleWaiter
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleHit:
		return "hit"
	case RoleWaiter:
		return "waiter"
	default:
		return "unknown"
	}
}

// Waiter receives the leader's result. ok=true carries the completed
// result; ok=false means the leader aborted (failed or was cancelled)
// and the waiter must fend for itself (typically requeue). Waiters run
// outside the cache lock, on the leader's goroutine.
type Waiter func(res *problem.Result, ok bool)

type entry struct {
	key  string
	res  *problem.Result
	size int64
}

type flight struct {
	waiters []Waiter
}

// Cache is an LRU result cache bounded by entry count and total
// marshalled bytes, with per-key single-flight coalescing. Results are
// stored and returned by pointer and must be treated as immutable —
// the serve layer never mutates a Result after the solve returns.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64 // 0 = unbounded
	bytes      int64
	ll         *list.List               // front = most recently used
	byKey      map[string]*list.Element // value: *entry
	flights    map[string]*flight
}

// New builds a cache holding at most maxEntries results (<=0 means
// 256) and at most maxBytes of marshalled result payload (<=0 means
// no byte bound).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      make(map[string]*list.Element),
		flights:    make(map[string]*flight),
	}
}

// Acquire resolves key to a role. RoleHit returns the cached result.
// RoleWaiter registers w on the in-flight solve. RoleLeader makes the
// caller responsible for solving key and then calling Complete or
// Abort — without that call, later identical submissions would wait
// forever, so the serve layer pairs it in a defer-like path on every
// exit.
func (c *Cache) Acquire(key string, w Waiter) (*problem.Result, Role) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).res, RoleHit
	}
	if fl, ok := c.flights[key]; ok {
		fl.waiters = append(fl.waiters, w)
		return nil, RoleWaiter
	}
	c.flights[key] = &flight{}
	return nil, RoleLeader
}

// Complete ends key's flight with a successful result: the result is
// inserted (evicting LRU entries past the bounds) and every waiter is
// notified with (res, true). A result too large for the byte bound is
// passed to waiters but not cached.
func (c *Cache) Complete(key string, res *problem.Result) {
	if res == nil {
		c.Abort(key)
		return
	}
	size := resultSize(res)
	c.mu.Lock()
	fl := c.flights[key]
	delete(c.flights, key)
	if size > 0 && (c.maxBytes <= 0 || size <= c.maxBytes) {
		if _, dup := c.byKey[key]; !dup {
			c.byKey[key] = c.ll.PushFront(&entry{key: key, res: res, size: size})
			c.bytes += size
			c.evict()
		}
	}
	var ws []Waiter
	if fl != nil {
		ws = fl.waiters
	}
	c.mu.Unlock()
	for _, w := range ws {
		w(res, true)
	}
}

// Abort ends key's flight without a result; waiters are notified with
// (nil, false) and nothing is cached.
func (c *Cache) Abort(key string) {
	c.mu.Lock()
	fl := c.flights[key]
	delete(c.flights, key)
	var ws []Waiter
	if fl != nil {
		ws = fl.waiters
	}
	c.mu.Unlock()
	for _, w := range ws {
		w(nil, false)
	}
}

// evict drops least-recently-used entries until both bounds hold.
// Callers hold c.mu.
func (c *Cache) evict() {
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		c.bytes -= e.size
	}
}

// Stats reports the current entry count and marshalled byte total,
// for the /metrics gauges.
func (c *Cache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// resultSize charges an entry by its marshalled JSON size — the same
// representation the HTTP layer serves — so the byte bound tracks what
// the cache actually saves clients from recomputing. 0 (unmarshalable)
// means "do not cache".
func resultSize(res *problem.Result) int64 {
	b, err := json.Marshal(res)
	if err != nil {
		return 0
	}
	return int64(len(b))
}
