package anneal

import (
	"context"
	"math"

	"cimsa/internal/ising"
	"cimsa/internal/rng"
)

// SCAOptions configures stochastic cellular automata annealing, the
// all-spins-at-once update rule used by STATICA [18] — the largest
// single-chip competitor in the paper's Table III. Unlike Metropolis
// (one spin at a time) or chromatic updates (independent sets), SCA
// updates *every* spin each step and keeps the dynamics stable with a
// self-interaction penalty q that tethers each spin to its previous
// value; annealing raises q while lowering the temperature.
type SCAOptions struct {
	// Steps is the number of synchronous update rounds.
	Steps int
	// TStart/TEnd bound the geometric temperature schedule. Zero values
	// scale automatically to the coupling magnitudes.
	TStart, TEnd float64
	// QStart/QEnd bound the linearly increasing self-interaction penalty.
	// Zero values scale automatically.
	QStart, QEnd float64
	// Seed drives the per-spin randomness.
	Seed uint64
}

// SCAResult reports a run.
type SCAResult struct {
	Spins  []int8
	Energy float64
	// Flips counts total spin flips across the run (a healthy run flips
	// heavily early and freezes late).
	Flips int
	// TailFlips counts flips in the final 10% of rounds; near-zero when
	// the q/T schedule has frozen the dynamics.
	TailFlips int
}

// SCA runs stochastic cellular automata annealing on the Ising model.
// Each round, every spin independently samples its next value from the
// logistic distribution of its local field plus the self-interaction
// q·σ_i, using the *previous* round's state — fully parallel, like the
// hardware it models.
func SCA(m *ising.Model, opts SCAOptions) (SCAResult, error) {
	return SCAContext(context.Background(), m, opts)
}

// SCAContext is SCA with cooperative cancellation, checked once per
// synchronous round without consuming randomness: an uncancelled run is
// bit-identical to SCA. On cancellation it returns the best state seen
// so far along with ctx.Err().
func SCAContext(ctx context.Context, m *ising.Model, opts SCAOptions) (SCAResult, error) {
	if err := m.Validate(); err != nil {
		return SCAResult{}, err
	}
	o := opts
	if o.Steps <= 0 {
		o.Steps = 500
	}
	// Scale defaults from the mean absolute coupling.
	var sum float64
	var count int
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if m.J[i][j] != 0 {
				sum += math.Abs(m.J[i][j])
				count++
			}
		}
	}
	meanJ := 1.0
	if count > 0 {
		meanJ = sum / float64(count)
	}
	if o.TStart == 0 {
		o.TStart = 2 * meanJ * math.Sqrt(float64(m.N))
	}
	if o.TEnd == 0 {
		o.TEnd = o.TStart / 1000
	}
	if o.QEnd == 0 {
		// The penalty must eventually dominate the *typical* local field
		// (~meanJ*sqrt(degree)) so the synchronous dynamics cannot
		// 2-cycle, without swamping it so early that the search freezes
		// prematurely.
		o.QEnd = 2 * meanJ * math.Sqrt(float64(m.N))
	}
	r := rng.New(o.Seed)
	spins := make([]int8, m.N)
	for i := range spins {
		if r.Bool() {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	next := make([]int8, m.N)
	fields := make([]float64, m.N)
	best := math.Inf(1)
	bestSpins := make([]int8, m.N)
	res := SCAResult{}

	for step := 0; step < o.Steps; step++ {
		if err := ctx.Err(); err != nil {
			res.Spins = bestSpins
			res.Energy = best
			return res, err
		}
		frac := float64(step) / float64(o.Steps-1+1)
		temp := o.TStart * math.Pow(o.TEnd/o.TStart, frac)
		q := o.QStart + frac*(o.QEnd-o.QStart)
		for i := 0; i < m.N; i++ {
			fields[i] = m.LocalField(spins, i) + q*float64(spins[i])
		}
		for i := 0; i < m.N; i++ {
			// P(next = +1) from the logistic (heat-bath) rule.
			pUp := 1 / (1 + math.Exp(-2*fields[i]/math.Max(temp, 1e-12)))
			if r.Float64() < pUp {
				next[i] = 1
			} else {
				next[i] = -1
			}
			if next[i] != spins[i] {
				res.Flips++
				if step >= o.Steps*9/10 {
					res.TailFlips++
				}
			}
		}
		spins, next = next, spins
		if e := m.Energy(spins); e < best {
			best = e
			copy(bestSpins, spins)
		}
	}
	res.Spins = bestSpins
	res.Energy = best
	return res, nil
}
