package anneal

import "cimsa/internal/rng"

// RandomSpins returns n spins drawn ±1 with equal probability,
// deterministically from the seed. It is the canonical initial state
// for spin solvers: every caller that shares a seed (direct library
// calls, the serve path, tests) must start from the same configuration
// for bit-identity to hold, so they all start here.
func RandomSpins(n int, seed uint64) []int8 {
	r := rng.New(seed)
	spins := make([]int8, n)
	for i := range spins {
		if r.Bool() {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	return spins
}
