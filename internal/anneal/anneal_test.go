package anneal

import (
	"math"
	"testing"

	"cimsa/internal/ising"
	"cimsa/internal/rng"
	"cimsa/internal/tsplib"
)

func TestGeometricSchedule(t *testing.T) {
	g := Geometric{Start: 10, End: 0.1}
	if got := g.Temperature(0, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("T(0) = %v", got)
	}
	if got := g.Temperature(99, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("T(end) = %v", got)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for it := 0; it < 100; it++ {
		cur := g.Temperature(it, 100)
		if cur > prev {
			t.Fatalf("geometric schedule not monotone at %d", it)
		}
		prev = cur
	}
	if got := g.Temperature(0, 1); got != 0.1 {
		t.Fatalf("degenerate steps: %v", got)
	}
}

func TestLinearSchedule(t *testing.T) {
	l := Linear{Start: 4, End: 0}
	if got := l.Temperature(0, 5); got != 4 {
		t.Fatalf("T(0) = %v", got)
	}
	if got := l.Temperature(4, 5); got != 0 {
		t.Fatalf("T(4) = %v", got)
	}
	if got := l.Temperature(2, 5); got != 2 {
		t.Fatalf("T(2) = %v", got)
	}
}

func TestConstantSchedule(t *testing.T) {
	c := Constant{T: 1.5}
	for it := 0; it < 10; it++ {
		if c.Temperature(it, 10) != 1.5 {
			t.Fatal("constant schedule varied")
		}
	}
}

func TestAcceptRules(t *testing.T) {
	r := rng.New(1)
	if !accept(-1, 0.5, r) {
		t.Fatal("downhill move rejected")
	}
	if !accept(0, 0.5, r) {
		t.Fatal("neutral move rejected")
	}
	if accept(1, 0, r) {
		t.Fatal("uphill move accepted at T=0")
	}
	// At high temperature almost everything is accepted.
	acc := 0
	for i := 0; i < 1000; i++ {
		if accept(0.1, 100, r) {
			acc++
		}
	}
	if acc < 950 {
		t.Fatalf("high-T acceptance only %d/1000", acc)
	}
	// At low temperature large uphill moves are essentially never taken.
	acc = 0
	for i := 0; i < 1000; i++ {
		if accept(10, 0.1, r) {
			acc++
		}
	}
	if acc > 0 {
		t.Fatalf("low-T acceptance %d/1000 for delta/T=100", acc)
	}
}

func TestIsingFindsFerromagnetGround(t *testing.T) {
	// 12-spin ferromagnet: ground energy -66 (all aligned).
	n := 12
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetJ(i, j, 1)
		}
	}
	spins := make([]int8, n)
	for i := range spins {
		if i%2 == 0 {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	res := Ising(m, spins, Options{Sweeps: 200, Seed: 1})
	want := -float64(n * (n - 1) / 2)
	if res.Energy != want {
		t.Fatalf("annealer reached %v, ground is %v", res.Energy, want)
	}
	if res.Proposed == 0 || res.Accepted == 0 {
		t.Fatal("no proposals recorded")
	}
}

func TestIsingTraceLength(t *testing.T) {
	m := ising.NewModel(4)
	m.SetJ(0, 1, 1)
	spins := []int8{1, -1, 1, -1}
	res := Ising(m, spins, Options{Sweeps: 17, Seed: 2, RecordTrace: true})
	if len(res.Trace) != 17 {
		t.Fatalf("trace has %d entries, want 17", len(res.Trace))
	}
}

func TestIsingDeterministic(t *testing.T) {
	m := ising.NewModel(10)
	r := rng.New(5)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			m.SetJ(i, j, r.NormFloat64())
		}
	}
	mk := func() []int8 {
		s := make([]int8, 10)
		for i := range s {
			s[i] = 1
		}
		return s
	}
	a := Ising(m, mk(), Options{Sweeps: 50, Seed: 7})
	b := Ising(m, mk(), Options{Sweeps: 50, Seed: 7})
	if a.Energy != b.Energy || a.Accepted != b.Accepted {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestTSPAnnealerImprovesAndValid(t *testing.T) {
	in := tsplib.Generate("sa-test", 60, tsplib.StyleUniform, 1)
	res := TSP(in, TSPOptions{Sweeps: 400, Seed: 3})
	if err := res.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	identLen := 0.0
	for i := 0; i < in.N(); i++ {
		identLen += in.Dist(i, (i+1)%in.N())
	}
	if res.Length >= identLen {
		t.Fatalf("SA did not improve on identity tour: %v >= %v", res.Length, identLen)
	}
	if got := res.Tour.Length(in); math.Abs(got-res.Length) > 1e-6 {
		t.Fatalf("reported %v but tour measures %v", res.Length, got)
	}
}

func TestTSPAnnealerNearOptimalTiny(t *testing.T) {
	in := tsplib.Generate("sa-tiny", 10, tsplib.StyleUniform, 2)
	res := TSP(in, TSPOptions{Sweeps: 2000, Seed: 4})
	// Brute-force optimal for comparison.
	best := bruteForceLength(in)
	if res.Length > 1.05*best {
		t.Fatalf("SA %v more than 5%% above optimal %v", res.Length, best)
	}
}

func bruteForceLength(in *tsplib.Instance) float64 {
	n := in.N()
	perm := make([]int, n-1)
	for i := range perm {
		perm[i] = i + 1
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			l := in.Dist(0, perm[0])
			for i := 1; i < len(perm); i++ {
				l += in.Dist(perm[i-1], perm[i])
			}
			l += in.Dist(perm[len(perm)-1], 0)
			if l < best {
				best = l
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestTSPDeterministic(t *testing.T) {
	in := tsplib.Generate("sa-det", 40, tsplib.StyleClustered, 5)
	a := TSP(in, TSPOptions{Sweeps: 100, Seed: 9})
	b := TSP(in, TSPOptions{Sweeps: 100, Seed: 9})
	if a.Length != b.Length {
		t.Fatalf("runs differ: %v vs %v", a.Length, b.Length)
	}
}

func TestTSPInitialTourRespected(t *testing.T) {
	in := tsplib.Generate("sa-init", 30, tsplib.StyleUniform, 6)
	init := TSP(in, TSPOptions{Sweeps: 300, Seed: 7}).Tour
	res := TSP(in, TSPOptions{Sweeps: 50, Seed: 8, Initial: init})
	// Starting from a good tour, the result must not be worse than it.
	if res.Length > init.Length(in)+1e-9 {
		t.Fatalf("warm start regressed: %v > %v", res.Length, init.Length(in))
	}
}

func TestTSPTrace(t *testing.T) {
	in := tsplib.Generate("sa-trace", 20, tsplib.StyleUniform, 7)
	res := TSP(in, TSPOptions{Sweeps: 25, Seed: 1, RecordTrace: true})
	if len(res.Trace) != 25 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	// Trace should broadly descend: final below initial.
	if res.Trace[len(res.Trace)-1] > res.Trace[0] {
		t.Fatalf("trace rose overall: %v -> %v", res.Trace[0], res.Trace[len(res.Trace)-1])
	}
}

func TestSwapDeltaConsistency(t *testing.T) {
	in := tsplib.Generate("sa-delta", 15, tsplib.StyleUniform, 8)
	m := localTSP{in: in}
	r := rng.New(11)
	order := r.Perm(15)
	lengthOf := func(o []int) float64 {
		var s float64
		for i := range o {
			s += in.Dist(o[i], o[(i+1)%len(o)])
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		i, j := r.Intn(15), r.Intn(15)
		if i == j {
			continue
		}
		before := lengthOf(order)
		delta := m.swapDelta(order, i, j)
		order[i], order[j] = order[j], order[i]
		after := lengthOf(order)
		if math.Abs((after-before)-delta) > 1e-9 {
			t.Fatalf("swap (%d,%d): delta %v, actual %v", i, j, delta, after-before)
		}
	}
}

func BenchmarkTSPAnneal200(b *testing.B) {
	in := tsplib.Generate("sa-bench", 200, tsplib.StyleUniform, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TSP(in, TSPOptions{Sweeps: 50, Seed: uint64(i)})
	}
}
