package anneal

import (
	"testing"

	"cimsa/internal/tsplib"
)

func TestTemperingValidAndImproves(t *testing.T) {
	in := tsplib.Generate("pt-basic", 80, tsplib.StyleUniform, 1)
	res := TemperingTSP(in, TemperingOptions{Replicas: 4, Sweeps: 150, Seed: 1})
	if err := res.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	identLen := 0.0
	for i := 0; i < in.N(); i++ {
		identLen += in.Dist(i, (i+1)%in.N())
	}
	if res.Length >= identLen {
		t.Fatalf("tempering did not improve identity tour: %v >= %v", res.Length, identLen)
	}
}

func TestTemperingExchangesHappen(t *testing.T) {
	in := tsplib.Generate("pt-exch", 60, tsplib.StyleClustered, 2)
	res := TemperingTSP(in, TemperingOptions{Replicas: 6, Sweeps: 100, Seed: 3})
	if res.ExchangeAttempts == 0 {
		t.Fatal("no exchanges attempted")
	}
	if res.Exchanges == 0 {
		t.Fatal("no exchanges accepted — ladder too sparse")
	}
	if res.Exchanges > res.ExchangeAttempts {
		t.Fatal("accepted more exchanges than attempted")
	}
}

func TestTemperingDeterministic(t *testing.T) {
	in := tsplib.Generate("pt-det", 50, tsplib.StyleUniform, 4)
	a := TemperingTSP(in, TemperingOptions{Replicas: 4, Sweeps: 60, Seed: 5})
	b := TemperingTSP(in, TemperingOptions{Replicas: 4, Sweeps: 60, Seed: 5})
	if a.Length != b.Length || a.Exchanges != b.Exchanges {
		t.Fatalf("runs differ: %v/%d vs %v/%d", a.Length, a.Exchanges, b.Length, b.Exchanges)
	}
}

func TestTemperingBeatsOrMatchesSingleChain(t *testing.T) {
	// At equal per-chain sweep counts, tempering's exchange moves make it
	// at least as good as a single Metropolis chain on average (the
	// standard parallel-tempering claim). Average over a few instances
	// to avoid flakiness.
	var pt, sa float64
	for seed := uint64(0); seed < 3; seed++ {
		in := tsplib.Generate("pt-vs-sa", 70, tsplib.StyleClustered, 10+seed)
		ptRes := TemperingTSP(in, TemperingOptions{Replicas: 4, Sweeps: 150, Seed: seed})
		saRes := TSP(in, TSPOptions{Sweeps: 150, Seed: seed})
		pt += ptRes.Length
		sa += saRes.Length
	}
	if pt > sa*1.02 {
		t.Fatalf("tempering total %v worse than single-chain SA %v", pt, sa)
	}
}

func TestTemperingDefaults(t *testing.T) {
	in := tsplib.Generate("pt-def", 40, tsplib.StyleUniform, 6)
	res := TemperingTSP(in, TemperingOptions{Seed: 7})
	if err := res.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
}

func TestTemperingWarmStart(t *testing.T) {
	in := tsplib.Generate("pt-warm", 60, tsplib.StyleUniform, 8)
	warm := TSP(in, TSPOptions{Sweeps: 200, Seed: 9}).Tour
	res := TemperingTSP(in, TemperingOptions{Replicas: 3, Sweeps: 40, Seed: 10, Initial: warm})
	if res.Length > warm.Length(in)+1e-9 {
		t.Fatalf("warm start regressed: %v > %v", res.Length, warm.Length(in))
	}
}

func BenchmarkTempering100(b *testing.B) {
	in := tsplib.Generate("pt-bench", 100, tsplib.StyleUniform, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TemperingTSP(in, TemperingOptions{Replicas: 4, Sweeps: 30, Seed: uint64(i)})
	}
}
