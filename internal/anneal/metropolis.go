package anneal

import (
	"context"
	"math"

	"cimsa/internal/ising"
	"cimsa/internal/rng"
)

// Result summarizes an annealing run.
type Result struct {
	// Energy is the best Hamiltonian value seen.
	Energy float64
	// Accepted and Proposed count Metropolis decisions.
	Accepted, Proposed int
	// Trace, if requested, holds the current energy after each sweep.
	Trace []float64
}

// Options configures an annealing run.
type Options struct {
	// Sweeps is the number of full passes over all spins.
	Sweeps int
	// Schedule supplies the temperature; defaults to Geometric{10, 0.01}.
	Schedule Schedule
	// Seed seeds the Metropolis randomness.
	Seed uint64
	// RecordTrace stores the energy after every sweep in Result.Trace.
	RecordTrace bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Sweeps == 0 {
		out.Sweeps = 100
	}
	if out.Schedule == nil {
		out.Schedule = Geometric{Start: 10, End: 0.01}
	}
	return out
}

// Ising runs single-spin-flip Metropolis annealing on a general Ising
// model, mutating spins in place, and returns the run summary. The final
// spin state is the last accepted state (not necessarily the best).
func Ising(m *ising.Model, spins []int8, opts Options) Result {
	res, _ := IsingContext(context.Background(), m, spins, opts)
	return res
}

// IsingContext is Ising with cooperative cancellation. The context is
// checked only at sweep boundaries and the check consumes no
// randomness, so a run whose context is never cancelled is
// bit-identical to Ising. On cancellation the partial result is
// returned along with ctx.Err().
func IsingContext(ctx context.Context, m *ising.Model, spins []int8, opts Options) (Result, error) {
	o := opts.withDefaults()
	r := rng.New(o.Seed)
	res := Result{Energy: m.Energy(spins)}
	cur := res.Energy
	for sweep := 0; sweep < o.Sweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		temp := o.Schedule.Temperature(sweep, o.Sweeps)
		for step := 0; step < m.N; step++ {
			i := r.Intn(m.N)
			delta := m.DeltaFlip(spins, i)
			res.Proposed++
			if accept(delta, temp, r) {
				ising.FlipSpin(spins, i)
				cur += delta
				res.Accepted++
				if cur < res.Energy {
					res.Energy = cur
				}
			}
		}
		if o.RecordTrace {
			res.Trace = append(res.Trace, cur)
		}
	}
	return res, nil
}

// accept implements the Metropolis criterion.
func accept(delta, temp float64, r *rng.Rand) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return r.Float64() < math.Exp(-delta/temp)
}
