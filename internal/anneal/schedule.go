// Package anneal implements classical simulated annealing: temperature
// schedules, a generic Metropolis engine over Ising models, and a
// CPU-baseline TSP annealer using the PBM swap move. These are the
// software baselines the paper's hardware annealer is compared against.
package anneal

import "math"

// Schedule yields the temperature for a given iteration in [0, steps).
type Schedule interface {
	// Temperature returns T at iteration it of total steps.
	Temperature(it, steps int) float64
}

// Geometric cools T from Start to End geometrically: the classic SA
// schedule.
type Geometric struct {
	Start, End float64
}

// Temperature implements Schedule.
func (g Geometric) Temperature(it, steps int) float64 {
	if steps <= 1 {
		return g.End
	}
	frac := float64(it) / float64(steps-1)
	return g.Start * math.Pow(g.End/g.Start, frac)
}

// Linear cools T from Start to End linearly.
type Linear struct {
	Start, End float64
}

// Temperature implements Schedule.
func (l Linear) Temperature(it, steps int) float64 {
	if steps <= 1 {
		return l.End
	}
	frac := float64(it) / float64(steps-1)
	return l.Start + frac*(l.End-l.Start)
}

// Constant holds T fixed; useful for ablations and sampling tests.
type Constant struct {
	T float64
}

// Temperature implements Schedule.
func (c Constant) Temperature(_, _ int) float64 { return c.T }
