package anneal_test

import (
	"testing"

	"cimsa/internal/anneal"
	"cimsa/internal/ising"
	"cimsa/internal/maxcut"
)

func TestSCAFerromagnet(t *testing.T) {
	n := 14
	m := ising.NewModel(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.SetJ(i, j, 1)
		}
	}
	res, err := anneal.SCA(m, anneal.SCAOptions{Steps: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := -float64(n * (n - 1) / 2)
	if res.Energy != want {
		t.Fatalf("SCA reached %v, ground is %v", res.Energy, want)
	}
	if res.Flips == 0 {
		t.Fatal("no flips recorded")
	}
}

func TestSCAMaxCutNearOptimal(t *testing.T) {
	g := maxcut.Random(16, 0.5, 7)
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	res, err := anneal.SCA(m, anneal.SCAOptions{Steps: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cut := g.CutValue(res.Spins)
	opt := maxcut.BruteForce(g)
	if cut < 0.95*opt {
		t.Fatalf("SCA cut %v below 95%% of optimum %v", cut, opt)
	}
}

func TestSCADeterministic(t *testing.T) {
	g := maxcut.Random(30, 0.3, 8)
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	a, err := anneal.SCA(m, anneal.SCAOptions{Steps: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := anneal.SCA(m, anneal.SCAOptions{Steps: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.Flips != b.Flips {
		t.Fatalf("runs differ: %v/%d vs %v/%d", a.Energy, a.Flips, b.Energy, b.Flips)
	}
}

func TestSCASelfPenaltyFreezesDynamics(t *testing.T) {
	// With the penalty annealed high, late rounds should flip far fewer
	// spins than early rounds: compare flips in a short hot run vs a
	// full annealed run's tail.
	g := maxcut.Random(40, 0.4, 10)
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	full, err := anneal.SCA(m, anneal.SCAOptions{Steps: 800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The tail (last 10% of rounds) must flip far less per round than
	// the run average: the q/T schedule froze the dynamics.
	avg := float64(full.Flips) / 800
	tail := float64(full.TailFlips) / 80
	if tail > avg/2 {
		t.Fatalf("SCA never froze: %.2f tail flips/round vs %.2f average", tail, avg)
	}
}

func TestSCARejectsInvalidModel(t *testing.T) {
	m := ising.NewModel(3)
	m.J[0][1] = 2 // asymmetric
	if _, err := anneal.SCA(m, anneal.SCAOptions{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func BenchmarkSCA64(b *testing.B) {
	g := maxcut.Random(64, 0.3, 1)
	m, err := g.ToIsing()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anneal.SCA(m, anneal.SCAOptions{Steps: 200, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
