package anneal

import (
	"context"
	"math"

	"cimsa/internal/ising"
	"cimsa/internal/rng"
	"cimsa/internal/tour"
	"cimsa/internal/tsplib"
)

// TemperingOptions configures the parallel-tempering TSP baseline (the
// permutational Boltzmann machine of the paper's reference [5] runs its
// PBM replicas under exactly this scheme).
type TemperingOptions struct {
	// Replicas is the number of parallel chains (≥ 2).
	Replicas int
	// TMin, TMax bound the geometric temperature ladder. Zero values
	// scale automatically to the instance's edge lengths.
	TMin, TMax float64
	// Sweeps is the number of update rounds; each round proposes N swaps
	// per replica and then attempts neighbour exchanges.
	Sweeps int
	// Seed drives all randomness.
	Seed uint64
	// Initial is the starting tour for every replica (default identity).
	Initial tour.Tour
}

// TemperingResult reports a parallel-tempering run.
type TemperingResult struct {
	Tour   tour.Tour
	Length float64
	// Exchanges counts accepted replica swaps (a healthy run exchanges
	// frequently; ~0 means the ladder is too sparse).
	Exchanges int
	// ExchangeAttempts counts exchange proposals.
	ExchangeAttempts int
}

// TemperingTSP runs parallel tempering with the PBM swap move: several
// replicas anneal at fixed temperatures and periodically exchange
// configurations, letting hot replicas ferry the search out of local
// minima that trap the cold ones. It is the strongest classical baseline
// in this repository.
func TemperingTSP(in *tsplib.Instance, opts TemperingOptions) TemperingResult {
	res, _ := TemperingTSPContext(context.Background(), in, opts)
	return res
}

// TemperingTSPContext is TemperingTSP with cooperative cancellation,
// checked at sweep boundaries without consuming randomness: an
// uncancelled run is bit-identical to TemperingTSP. On cancellation the
// best tour found so far is returned along with ctx.Err().
func TemperingTSPContext(ctx context.Context, in *tsplib.Instance, opts TemperingOptions) (TemperingResult, error) {
	n := in.N()
	o := opts
	if o.Replicas < 2 {
		o.Replicas = 4
	}
	if o.Sweeps == 0 {
		o.Sweeps = 200
	}
	base := tour.New(n)
	if o.Initial != nil {
		base = o.Initial.Clone()
	}
	if o.TMax == 0 {
		o.TMax = base.Length(in) / float64(n) // ~mean edge length
	}
	if o.TMin == 0 {
		o.TMin = o.TMax / 200
	}
	// Geometric ladder from cold (index 0) to hot.
	temps := make([]float64, o.Replicas)
	for r := range temps {
		frac := float64(r) / float64(o.Replicas-1)
		temps[r] = o.TMin * math.Pow(o.TMax/o.TMin, frac)
	}
	rand := rng.New(o.Seed)
	model := localTSP{in: in}

	type replica struct {
		order  []int
		length float64
		r      *rng.Rand
	}
	reps := make([]*replica, o.Replicas)
	for i := range reps {
		t := base.Clone()
		reps[i] = &replica{order: t, length: t.Length(in), r: rand.Split()}
	}
	best := base.Clone()
	bestLen := best.Length(in)

	res := TemperingResult{}
	for sweep := 0; sweep < o.Sweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			res.Tour = best
			res.Length = best.Length(in)
			return res, err
		}
		for ri, rep := range reps {
			temp := temps[ri]
			for step := 0; step < n; step++ {
				i, j := rep.r.Intn(n), rep.r.Intn(n)
				if i == j {
					continue
				}
				delta := model.swapDelta(rep.order, i, j)
				if accept(delta, temp, rep.r) {
					ising.ApplySwap(rep.order, i, j)
					rep.length += delta
					if rep.length < bestLen {
						bestLen = rep.length
						copy(best, rep.order)
					}
				}
			}
		}
		// Neighbour exchanges, alternating parity to keep detailed
		// balance across the ladder.
		start := sweep % 2
		for ri := start; ri+1 < o.Replicas; ri += 2 {
			res.ExchangeAttempts++
			a, b := reps[ri], reps[ri+1]
			// Metropolis exchange criterion on inverse temperatures.
			dBeta := 1/temps[ri] - 1/temps[ri+1]
			dE := b.length - a.length
			if dBeta*dE <= 0 || rand.Float64() < math.Exp(-dBeta*dE) {
				a.order, b.order = b.order, a.order
				a.length, b.length = b.length, a.length
				res.Exchanges++
			}
		}
	}
	// Final quench: the coldest replica still runs at TMin > 0, so finish
	// the best configuration with zero-temperature sweeps (accept only
	// strict improvements) until no proposal in a sweep lands.
	quench := rand.Split()
	bestOrder := []int(best)
	for sweep := 0; sweep < 20; sweep++ {
		if err := ctx.Err(); err != nil {
			res.Tour = best
			res.Length = best.Length(in)
			return res, err
		}
		improved := false
		for step := 0; step < 4*n; step++ {
			i, j := quench.Intn(n), quench.Intn(n)
			if i == j {
				continue
			}
			if delta := model.swapDelta(bestOrder, i, j); delta < 0 {
				ising.ApplySwap(bestOrder, i, j)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res.Tour = best
	res.Length = best.Length(in)
	return res, nil
}
