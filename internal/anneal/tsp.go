package anneal

import (
	"cimsa/internal/ising"
	"cimsa/internal/rng"
	"cimsa/internal/tour"
	"cimsa/internal/tsplib"
)

// TSPResult reports a TSP annealing run.
type TSPResult struct {
	Tour   tour.Tour
	Length float64
	// Proposed/Accepted count swap proposals.
	Proposed, Accepted int
	// Trace, if requested, holds tour length after each sweep.
	Trace []float64
}

// TSPOptions configures the CPU-baseline TSP annealer.
type TSPOptions struct {
	// Sweeps is the number of passes; each pass proposes N swaps.
	Sweeps int
	// Schedule supplies the temperature. The default scales the start
	// temperature to the mean edge length so acceptance starts high.
	Schedule Schedule
	// Seed seeds proposals and Metropolis decisions.
	Seed uint64
	// Initial is the starting tour; defaults to the identity order.
	Initial tour.Tour
	// RecordTrace stores tour length after each sweep.
	RecordTrace bool
}

// TSP runs the classical CPU simulated-annealing baseline: PBM-style
// order swaps under a Metropolis criterion. This is the software
// reference point for the paper's convergence-speed comparison: the same
// move set as the hardware, but temperature-driven randomness instead of
// noisy SRAM weights, and one sequential update at a time.
func TSP(in *tsplib.Instance, opts TSPOptions) TSPResult {
	n := in.N()
	o := opts
	if o.Sweeps == 0 {
		o.Sweeps = 200
	}
	var t tour.Tour
	if o.Initial != nil {
		t = o.Initial.Clone()
	} else {
		t = tour.New(n)
	}
	if o.Schedule == nil {
		// Scale the schedule to the instance: start near the mean edge
		// length of the initial tour, end near zero.
		mean := t.Length(in) / float64(n)
		o.Schedule = Geometric{Start: mean, End: mean / 1000}
	}
	r := rng.New(o.Seed)
	order := []int(t)
	cur := t.Length(in)
	res := TSPResult{Length: cur}
	best := t.Clone()

	// The swap delta is evaluated through the Ising local-energy identity
	// (four MACs), exactly as the hardware would; see ising.SwapLocalDelta.
	tspModel := localTSP{in: in}
	for sweep := 0; sweep < o.Sweeps; sweep++ {
		temp := o.Schedule.Temperature(sweep, o.Sweeps)
		for step := 0; step < n; step++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			delta := tspModel.swapDelta(order, i, j)
			res.Proposed++
			if accept(delta, temp, r) {
				ising.ApplySwap(order, i, j)
				cur += delta
				res.Accepted++
				if cur < res.Length {
					res.Length = cur
					copy(best, order)
				}
			}
		}
		if o.RecordTrace {
			res.Trace = append(res.Trace, cur)
		}
	}
	res.Tour = best
	res.Length = best.Length(in) // re-measure to shed float drift
	return res
}

// localTSP evaluates swap deltas directly from the instance without
// materializing the N x N distance matrix, so the baseline runs on
// instances of any size.
type localTSP struct {
	in *tsplib.Instance
}

// swapDelta mirrors ising.TSP.SwapLocalDelta: four local spin energies,
// two before and two after the swap. The shared-edge double count
// cancels for adjacent positions.
func (m localTSP) swapDelta(order []int, i, j int) float64 {
	n := len(order)
	k, l := order[i], order[j]
	le := func(pos, city int) float64 {
		prev := order[(pos-1+n)%n]
		next := order[(pos+1)%n]
		return m.in.Dist(prev, city) + m.in.Dist(city, next)
	}
	before := le(i, k) + le(j, l)
	order[i], order[j] = l, k
	after := le(i, l) + le(j, k)
	order[i], order[j] = k, l
	return after - before
}
