package cimsa_test

import (
	"bytes"
	"strings"
	"testing"

	"cimsa"
	"cimsa/internal/tsplib"
	"cimsa/internal/viz"
)

// TestUserJourney walks the full adoption path a downstream user takes:
// generate a workload, serialize it to TSPLIB format, load it back,
// solve with two modes, persist the tour, re-load the tour, verify its
// length, and render it — every public surface in one flow.
func TestUserJourney(t *testing.T) {
	// 1. Generate and serialize a workload.
	orig := cimsa.GenerateInstance("journey", 300, 77)
	var tspFile bytes.Buffer
	if err := tsplib.Write(&tspFile, orig); err != nil {
		t.Fatal(err)
	}

	// 2. Load it back as a user would from disk.
	in, err := cimsa.LoadInstance(&tspFile)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != orig.N() {
		t.Fatalf("round trip changed size: %d", in.N())
	}

	// 3. Solve with the paper's design and the greedy ablation.
	rep, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: 5, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: 5, Mode: "greedy", SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Length <= 0 || greedy.Length <= 0 {
		t.Fatal("degenerate solves")
	}

	// 4. Persist and re-load the tour.
	var tourFile bytes.Buffer
	if err := tsplib.WriteTour(&tourFile, rep.Instance, rep.Tour); err != nil {
		t.Fatal(err)
	}
	order, err := tsplib.ParseTour(&tourFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != in.N() {
		t.Fatalf("tour round trip lost cities: %d", len(order))
	}
	var reloaded cimsa.Tour = order
	if err := reloaded.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	if got := reloaded.Length(in); got != rep.Length {
		t.Fatalf("reloaded tour measures %v, solve reported %v", got, rep.Length)
	}

	// 5. Render to SVG.
	var svg bytes.Buffer
	if err := viz.WriteSVG(&svg, in, reloaded, viz.Options{Title: "journey"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Fatal("SVG incomplete")
	}

	// 6. The hardware report is self-consistent.
	c := rep.Chip
	if c.Windows <= 0 || c.Arrays != (c.Windows+9)/10 {
		t.Fatalf("window/array accounting inconsistent: %d/%d", c.Windows, c.Arrays)
	}
	if c.LatencySeconds <= 0 || c.EnergyJ <= 0 || c.AreaMM2 <= 0 {
		t.Fatal("hardware report incomplete")
	}
}

// TestModeSelectionThroughFacade exercises every named mode string.
func TestModeSelectionThroughFacade(t *testing.T) {
	in := cimsa.GenerateInstance("modes", 120, 11)
	for _, mode := range []string{"noisy-cim", "metropolis", "greedy", "noisy-spins"} {
		rep, err := cimsa.Solve(in, cimsa.Options{Seed: 2, Mode: mode, SkipHardware: true})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if err := rep.Tour.Validate(in.N()); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	if _, err := cimsa.Solve(in, cimsa.Options{Mode: "quantum"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestRestartsThroughFacade checks best-of-K plumbing end to end.
func TestRestartsThroughFacade(t *testing.T) {
	in := cimsa.GenerateInstance("restarts", 200, 13)
	one, err := cimsa.Solve(in, cimsa.Options{Seed: 4, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	best, err := cimsa.Solve(in, cimsa.Options{Seed: 4, Restarts: 3, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.Length > one.Length {
		t.Fatalf("best-of-3 (%v) worse than single (%v)", best.Length, one.Length)
	}
}
