// Package cimsa is a software reproduction of "Digital CIM with Noisy
// SRAM Bit: A Compact Clustered Annealer for Large-Scale Combinatorial
// Optimization" (DAC 2024): an Ising-model TSP annealer that solves
// tens-of-thousands-of-city problems with MB-level weight memory by
// combining hierarchical clustering (input sparsity), compact digital
// compute-in-memory weight windows (weight sparsity), chromatic parallel
// cluster updates, and annealing driven by the intrinsic process
// variation of SRAM bit cells under reduced supply voltage.
//
// This package is the stable facade over the internal packages:
//
//	result, err := cimsa.Solve(instance, cimsa.Options{PMax: 3})
//
// For finer control (custom noise schedules, ablation modes, PPA
// technology constants) construct a core annealer via Options.Advanced
// fields; the internal packages are reachable for code inside this
// module (examples, cmd tools, benchmarks).
package cimsa

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"cimsa/internal/checkpoint"
	"cimsa/internal/clustered"
	"cimsa/internal/core"
	"cimsa/internal/noise"
	"cimsa/internal/ppa"
	"cimsa/internal/tour"
	"cimsa/internal/tsplib"
)

// Instance is a TSP problem instance (re-exported from the tsplib
// package for facade users).
type Instance = tsplib.Instance

// WorkersAuto, assigned to Options.Workers, lets the solver pick the
// pool size per solve from the instance size and GOMAXPROCS: small
// instances run sequentially, paper-scale ones spread across cores.
// Auto is the right default for mixed workloads (e.g. a solve service
// fielding both 500-city and 85k-city jobs); like every other worker
// count it is bit-identical to sequential execution.
const WorkersAuto = clustered.WorkersAuto

// Tour is a cyclic visiting order of city indices.
type Tour = tour.Tour

// Report is the full solve outcome: solution, quality vs the classical
// reference solver, annealing statistics and the hardware PPA estimate.
type Report = core.Report

// ChipReport is the hardware performance/power/area estimate.
type ChipReport = ppa.ChipReport

// ProgressEvent is one solver progress notification: emitted at every
// write-back epoch and at the end of every annealed level (see
// Options.Progress).
type ProgressEvent = clustered.ProgressEvent

// Options selects the annealer design point.
type Options struct {
	// PMax is the maximum cluster size (the paper evaluates 2..4;
	// 3 is the recommended trade-off and the default).
	PMax int
	// Seed makes runs reproducible; same seed, same tour.
	Seed uint64
	// Reference additionally runs the classical reference solver and
	// fills Report.OptimalRatio.
	Reference bool
	// SkipHardware disables the chip PPA estimate.
	SkipHardware bool
	// Parallel updates non-adjacent clusters across a persistent worker
	// pool, like the hardware updates all same-phase windows at once.
	// Results are bit-identical to the sequential mode.
	Parallel bool
	// Workers sets the worker-pool size: any value > 1 enables the pool
	// on its own, 1 forces fully inline execution, 0 picks GOMAXPROCS
	// when Parallel is set (and stays sequential otherwise), and
	// WorkersAuto (-1) lets the solver choose from the instance size and
	// GOMAXPROCS — sequential where the pool cannot pay for its own
	// hand-offs, pooled at paper scale. Every worker count produces
	// bit-identical results — enforced in clustered's determinism tests
	// and again at the service boundary (internal/faultinject), where
	// solves run next to cancelled siblings with the scheduler's
	// Progress hook injected.
	Workers int
	// Mode selects the randomness source by name: "noisy-cim" (default),
	// "metropolis", "greedy" or "noisy-spins" (the ablations of
	// DESIGN.md).
	Mode string
	// Fabric selects the noise substrate the weights are read through:
	// "sram" (the paper's noisy SRAM bit, the default), "mram"
	// (TAXI-style stochastic toward-reset flips), "fefet"
	// (domain-granular errors with a steep retention cliff) or "clean"
	// (an ideal array: no noise at any supply). The fabric changes the
	// solve's output, so it is folded into cached-result identity.
	Fabric string
	// FabricSeed pins the fabricated chip explicitly; replica r of a
	// multi-restart solve uses FabricSeed + r. 0 (the default) derives
	// each replica's chip from Seed exactly as before fabrics were
	// selectable.
	FabricSeed uint64
	// Restarts runs that many independent replicas (distinct seeds and
	// noise fabrics) and keeps the best tour; 0 or 1 means a single run.
	Restarts int
	// Progress, when non-nil, receives per-epoch and per-level progress
	// events (with the restart index for multi-restart runs). The hook
	// runs on the solve goroutine, only observes state — it cannot change
	// the result — and must return quickly.
	Progress func(ProgressEvent)
	// Checkpoint enables durable snapshots and resume (zero value: off).
	Checkpoint Checkpoint
}

// Checkpoint configures durable solve snapshots: when Dir is set, the
// solver periodically persists its full state (atomically, with a
// checksum) to one file per (instance, seed) pair inside Dir, and —
// with Resume set — continues from that file if it exists. A resumed
// run is bit-identical to one that never stopped: same tour, same
// length, same statistics, at every worker count. A corrupt, truncated
// or mismatched file fails the solve with a diagnostic; it is never
// silently annealed from.
type Checkpoint struct {
	// Dir is the checkpoint directory (created if missing). Empty
	// disables checkpointing entirely.
	Dir string
	// EveryEpochs writes one snapshot per that many write-back epochs
	// (0 or 1: every epoch). Restart boundaries and cancellation
	// flushes are always written regardless of cadence.
	EveryEpochs int
	// Resume loads Dir's checkpoint for this (instance, seed) pair and
	// continues from it; a missing file just starts fresh.
	Resume bool
	// OnWrite, when non-nil, is called with the file path after every
	// successful snapshot write (on the solve goroutine; must be fast).
	OnWrite func(path string)
	// OnResume, when non-nil, is called with the file path when a
	// checkpoint was found and the solve will continue from it.
	OnResume func(path string)
}

// Validate checks the options without running anything — the single
// error path for every front end (CLI flags, service requests): a bad
// design point is rejected here with a field-specific error instead of
// failing deep inside the solver stack.
func (o Options) Validate() error {
	if o.PMax != 0 && (o.PMax < 2 || o.PMax > 8) {
		return fmt.Errorf("cimsa: PMax %d out of range 2..8 (0 defaults to 3)", o.PMax)
	}
	if o.Workers < WorkersAuto {
		return fmt.Errorf("cimsa: negative Workers %d (only WorkersAuto = %d is allowed below 0)", o.Workers, WorkersAuto)
	}
	if o.Restarts < 0 {
		return fmt.Errorf("cimsa: negative Restarts %d", o.Restarts)
	}
	if o.Mode != "" {
		if _, err := clustered.ParseMode(o.Mode); err != nil {
			return fmt.Errorf("cimsa: unknown Mode %q (noisy-cim | metropolis | greedy | noisy-spins)", o.Mode)
		}
	}
	if o.Fabric != "" {
		if _, err := noise.New(o.Fabric, 0); err != nil {
			return fmt.Errorf("cimsa: unknown Fabric %q (sram | mram | fefet | clean)", o.Fabric)
		}
	}
	if o.Checkpoint.EveryEpochs < 0 {
		return fmt.Errorf("cimsa: negative Checkpoint.EveryEpochs %d", o.Checkpoint.EveryEpochs)
	}
	if o.Checkpoint.Dir == "" && (o.Checkpoint.Resume || o.Checkpoint.EveryEpochs > 0) {
		return fmt.Errorf("cimsa: Checkpoint requires Dir to be set")
	}
	return nil
}

// Solve runs the clustered noisy-CIM annealer on the instance.
func Solve(in *Instance, opt Options) (*Report, error) {
	return SolveContext(context.Background(), in, opt)
}

// SolveContext is Solve with cancellation: ctx is checked between
// chromatic phases and at write-back epochs, so even 100k-city solves
// abort promptly. A run whose context is never cancelled is
// bit-identical to Solve with the same options — the plumbing consumes
// no randomness.
func SolveContext(ctx context.Context, in *Instance, opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	mode := clustered.ModeNoisyCIM
	if opt.Mode != "" {
		m, err := clustered.ParseMode(opt.Mode)
		if err != nil {
			return nil, err
		}
		mode = m
	}
	cfg := core.Config{
		PMax:               opt.PMax,
		Seed:               opt.Seed,
		Mode:               mode,
		Fabric:             opt.Fabric,
		FabricSeed:         opt.FabricSeed,
		SkipHardwareReport: opt.SkipHardware,
		Parallel:           opt.Parallel,
		Workers:            opt.Workers,
		Restarts:           opt.Restarts,
		Progress:           opt.Progress,
	}
	if ck := opt.Checkpoint; ck.Dir != "" {
		if err := os.MkdirAll(ck.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cimsa: checkpoint dir: %w", err)
		}
		path := checkpoint.DefaultPath(ck.Dir, in, opt.Seed)
		if ck.Resume {
			snap, err := checkpoint.Load(path)
			switch {
			case err == nil:
				cfg.Resume = snap
				if ck.OnResume != nil {
					ck.OnResume(path)
				}
			case errors.Is(err, fs.ErrNotExist):
				// No checkpoint yet: fresh start.
			default:
				return nil, err
			}
		}
		every := ck.EveryEpochs
		if every < 1 {
			every = 1
		}
		epochs := 0
		onWrite := ck.OnWrite
		cfg.Checkpoint = func(s *checkpoint.Snapshot) error {
			// Epoch snapshots honour the cadence; restart boundaries and
			// cancellation flushes always hit disk — they are the last
			// state the interrupted run will ever offer.
			if s.Solver != nil && !s.Solver.Flush {
				write := epochs%every == 0
				epochs++
				if !write {
					return nil
				}
			}
			if err := checkpoint.Save(path, s); err != nil {
				return err
			}
			if onWrite != nil {
				onWrite(path)
			}
			return nil
		}
	}
	a, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if opt.Reference {
		return a.SolveWithReferenceContext(ctx, in)
	}
	return a.SolveContext(ctx, in)
}

// SolveName solves a built-in registry instance (e.g. "pcb3038",
// "rl5915", "pla85900"); the coordinates are synthesized
// deterministically since the module ships no data files.
func SolveName(name string, opt Options) (*Report, error) {
	in, err := tsplib.Load(name)
	if err != nil {
		return nil, err
	}
	return Solve(in, opt)
}

// LoadInstance parses a TSPLIB95 .tsp stream (EUC_2D, CEIL_2D, GEO and
// ATT metrics with NODE_COORD_SECTION).
func LoadInstance(r io.Reader) (*Instance, error) {
	return tsplib.Parse(r)
}

// GenerateInstance synthesizes an n-city instance whose spatial
// statistics follow the TSPLIB family the name suggests ("pcb...",
// "rl...", "pla...", "usa...", anything else uniform).
func GenerateInstance(name string, n int, seed uint64) *Instance {
	return tsplib.Generate(name, n, tsplib.StyleForName(name), seed)
}

// LoadNamed synthesizes a built-in registry instance by name.
func LoadNamed(name string) (*Instance, error) { return tsplib.Load(name) }

// InstanceNames lists the built-in registry instances in size order.
func InstanceNames() []string { return tsplib.Names() }
