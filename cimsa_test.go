package cimsa_test

import (
	"fmt"
	"strings"
	"testing"

	"cimsa"
)

func TestFacadeSolve(t *testing.T) {
	in := cimsa.GenerateInstance("facade", 200, 1)
	rep, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: 1, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	if rep.OptimalRatio <= 0 {
		t.Fatal("reference ratio missing")
	}
	if rep.Chip.AreaMM2 <= 0 {
		t.Fatal("hardware report missing")
	}
}

func TestFacadeSolveName(t *testing.T) {
	rep, err := cimsa.SolveName("pcb442", cimsa.Options{Seed: 2, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 442 {
		t.Fatalf("solved %d cities", rep.N)
	}
	if rep.Chip.AreaMM2 != 0 {
		t.Fatal("hardware report present despite SkipHardware")
	}
	if _, err := cimsa.SolveName("bogus", cimsa.Options{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFacadeLoadInstance(t *testing.T) {
	src := "NAME : t\nTYPE : TSP\nDIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 3 0\n3 0 4\nEOF\n"
	in, err := cimsa.LoadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 3 || in.Dist(1, 2) != 5 {
		t.Fatalf("parsed instance wrong: n=%d", in.N())
	}
}

func TestFacadeNames(t *testing.T) {
	names := cimsa.InstanceNames()
	if len(names) == 0 {
		t.Fatal("no registry names")
	}
	found := false
	for _, n := range names {
		if n == "pla85900" {
			found = true
		}
	}
	if !found {
		t.Fatal("pla85900 missing from registry")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	in := cimsa.GenerateInstance("facade-det", 150, 3)
	a, err := cimsa.Solve(in, cimsa.Options{Seed: 4, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cimsa.Solve(in, cimsa.Options{Seed: 4, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Length != b.Length {
		t.Fatalf("same seed, different lengths: %v vs %v", a.Length, b.Length)
	}
}

func TestFacadeRejectsBadOptions(t *testing.T) {
	in := cimsa.GenerateInstance("facade-bad", 50, 5)
	if _, err := cimsa.Solve(in, cimsa.Options{PMax: 1}); err == nil {
		t.Fatal("PMax=1 accepted")
	}
}

func TestFacadeExplicitMatrixEndToEnd(t *testing.T) {
	// An EXPLICIT-matrix TSPLIB file (no coordinates) solves through the
	// full pipeline: the parser recovers an MDS embedding for the
	// clustering while distances always come from the matrix.
	base := cimsa.GenerateInstance("exp-src", 120, 9)
	var sb strings.Builder
	fmt.Fprintf(&sb, "NAME : exp120\nTYPE : TSP\nDIMENSION : %d\n", base.N())
	sb.WriteString("EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : FULL_MATRIX\nEDGE_WEIGHT_SECTION\n")
	for i := 0; i < base.N(); i++ {
		for j := 0; j < base.N(); j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%g", base.Dist(i, j))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("EOF\n")
	in, err := cimsa.LoadInstance(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cimsa.Solve(in, cimsa.Options{Seed: 3, SkipHardware: true, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Tour.Validate(in.N()); err != nil {
		t.Fatal(err)
	}
	if rep.OptimalRatio > 1.6 {
		t.Fatalf("explicit-instance quality poor: %v", rep.OptimalRatio)
	}
}
