package cimsa_test

import (
	"fmt"
	"log"
	"os"

	"cimsa"
)

// ExampleSolve shows the minimal end-to-end use of the annealer: build a
// workload, solve it, and inspect quality plus the modelled hardware.
func ExampleSolve() {
	in := cimsa.GenerateInstance("demo", 500, 42)
	rep, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: 1, Reference: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tour within %.0f%% of the reference solver\n", 100*(rep.OptimalRatio-1))
	fmt.Printf("on-chip: %.2f mm², %.1f µs to solution\n",
		rep.Chip.AreaMM2, rep.Chip.LatencySeconds*1e6)
}

// ExampleLoadInstance shows solving a TSPLIB file from disk.
func ExampleLoadInstance() {
	f, err := os.Open("problem.tsp")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	in, err := cimsa.LoadInstance(f)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cimsa.Solve(in, cimsa.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rep.Tour), "cities routed")
}

// ExampleSolveName shows the built-in paper workloads.
func ExampleSolveName() {
	rep, err := cimsa.SolveName("pcb3038", cimsa.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pcb3038: %.1f Mb weight SRAM on chip\n",
		float64(rep.Chip.PhysicalWeightBits)/1e6)
}
