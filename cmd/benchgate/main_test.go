package main

import (
	"strings"
	"testing"
)

// bf builds a benchFile with sequential/pooled pairs at the given
// sizes; times[i] is {sequentialSeconds, pooledSeconds} for sizes[i].
func bf(numCPU int, sizes []int, times [][2]float64) *benchFile {
	f := &benchFile{GoMaxProcs: numCPU, NumCPU: numCPU}
	for i, size := range sizes {
		f.Results = append(f.Results,
			benchResult{Cities: size, Mode: "sequential", Seconds: times[i][0]},
			benchResult{Cities: size, Mode: "pooled", Seconds: times[i][1]},
		)
	}
	return f
}

var defaultCfg = gateConfig{Tolerance: 0.15, RequireSpeedup: 1.2, RequireAt: 10000, MinCPUs: 4}

func TestGatePassesWithinTolerance(t *testing.T) {
	committed := bf(4, []int{1000, 10000}, [][2]float64{{0.04, 0.05}, {0.40, 0.30}})
	// Ratios drift a little but stay under committed*1.15, and the
	// 10k speedup 0.40/0.31 = 1.29x clears 1.2x.
	measured := bf(4, []int{1000, 10000}, [][2]float64{{0.04, 0.055}, {0.40, 0.31}})
	violations, _ := gate(committed, measured, defaultCfg)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
}

func TestGateCatchesRatioRegression(t *testing.T) {
	committed := bf(4, []int{5000}, [][2]float64{{0.20, 0.18}})
	// ratio 0.9 committed; measured 1.3 — dispatch overhead is back.
	measured := bf(4, []int{5000}, [][2]float64{{0.20, 0.26}})
	violations, _ := gate(committed, measured, gateConfig{Tolerance: 0.15})
	if len(violations) != 1 || !strings.Contains(violations[0], "5000 cities") {
		t.Fatalf("want one 5000-cities ratio violation, got %v", violations)
	}
}

func TestGateCatchesMissingSpeedup(t *testing.T) {
	committed := bf(4, []int{10000}, [][2]float64{{0.40, 0.30}})
	// Ratio matches committed exactly (no drift violation) but the
	// speedup is only 0.40/0.36 = 1.11x on a 4-CPU runner.
	committed.Results[1].Seconds = 0.36
	measured := bf(4, []int{10000}, [][2]float64{{0.40, 0.36}})
	violations, _ := gate(committed, measured, defaultCfg)
	if len(violations) != 1 || !strings.Contains(violations[0], "speedup") {
		t.Fatalf("want one speedup violation, got %v", violations)
	}
}

func TestGateSkipsSpeedupOnSmallRunners(t *testing.T) {
	committed := bf(4, []int{10000}, [][2]float64{{0.40, 0.48}})
	// A 1-CPU runner cannot show a pooled win; ratio holds, speedup
	// check must be skipped rather than failed.
	measured := bf(1, []int{10000}, [][2]float64{{0.40, 0.48}})
	violations, notes := gate(committed, measured, defaultCfg)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no skip note in %v", notes)
	}
}

func TestGateFailsOnMissingMeasuredSize(t *testing.T) {
	committed := bf(4, []int{1000, 10000}, [][2]float64{{0.04, 0.05}, {0.40, 0.30}})
	measured := bf(4, []int{1000}, [][2]float64{{0.04, 0.05}})
	violations, _ := gate(committed, measured, defaultCfg)
	if len(violations) == 0 {
		t.Fatal("missing 10000-city measurement not flagged")
	}
}

func TestGateFailsOnNoOverlap(t *testing.T) {
	committed := bf(4, []int{1000}, [][2]float64{{0.04, 0.05}})
	measured := &benchFile{NumCPU: 4}
	violations, _ := gate(committed, measured, gateConfig{Tolerance: 0.15})
	if len(violations) == 0 {
		t.Fatal("empty measured file not flagged")
	}
}

// Extra modes (e.g. "auto") in either file must not confuse the
// pooled/sequential pairing.
func TestGateIgnoresExtraModes(t *testing.T) {
	committed := bf(4, []int{5000}, [][2]float64{{0.20, 0.18}})
	measured := bf(4, []int{5000}, [][2]float64{{0.20, 0.19}})
	measured.Results = append(measured.Results, benchResult{Cities: 5000, Mode: "auto", Seconds: 0.17})
	violations, _ := gate(committed, measured, gateConfig{Tolerance: 0.15})
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
}
