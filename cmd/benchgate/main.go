// Command benchgate is the CI perf-regression gate for the solve
// benchmarks. It compares a freshly measured benchmark file (written by
// TestEmitSolveBench with CIMSA_BENCH_OUT) against the committed
// BENCH_solve.json snapshot and exits non-zero when the pooled dispatch
// path has regressed.
//
// Two checks run:
//
//  1. Ratio drift: at every instance size present in both files, the
//     measured pooled/sequential time ratio must not exceed the
//     committed ratio by more than -tolerance. This is hardware-neutral
//     — a slower runner slows both modes — so it catches dispatch
//     overhead creeping back in even when absolute times are useless.
//
//  2. Absolute speedup: on runners with at least -min-cpus CPUs, the
//     measured sequential/pooled speedup at -require-at cities must
//     reach -require-speedup. On smaller runners (where a pool cannot
//     win by physics) the check is skipped with a note.
//
// Usage:
//
//	benchgate -committed BENCH_solve.json -measured bench_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// benchFile mirrors the JSON written by TestEmitSolveBench; unknown
// fields are ignored so the gate survives snapshot format growth.
type benchFile struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Results    []benchResult `json:"results"`
}

type benchResult struct {
	Cities  int     `json:"cities"`
	Mode    string  `json:"mode"`
	Seconds float64 `json:"seconds_per_solve"`
}

// gateConfig are the thresholds the comparison runs under.
type gateConfig struct {
	// Tolerance is the allowed relative increase of the measured
	// pooled/sequential ratio over the committed one (0.15 = 15%).
	Tolerance float64
	// RequireSpeedup is the sequential/pooled speedup the measured file
	// must show at RequireAt cities — enforced only when the measuring
	// runner had at least MinCPUs CPUs.
	RequireSpeedup float64
	RequireAt      int
	MinCPUs        int
}

// seconds returns the time for (cities, mode), or ok=false.
func (f *benchFile) seconds(cities int, mode string) (float64, bool) {
	for _, r := range f.Results {
		if r.Cities == cities && r.Mode == mode {
			return r.Seconds, true
		}
	}
	return 0, false
}

// ratio returns pooled/sequential at the given size, or ok=false when
// either mode is missing or the sequential time is non-positive.
func (f *benchFile) ratio(cities int) (float64, bool) {
	seq, ok1 := f.seconds(cities, "sequential")
	par, ok2 := f.seconds(cities, "pooled")
	if !ok1 || !ok2 || seq <= 0 {
		return 0, false
	}
	return par / seq, true
}

// sizes returns the distinct instance sizes in file order.
func (f *benchFile) sizes() []int {
	var out []int
	seen := map[int]bool{}
	for _, r := range f.Results {
		if !seen[r.Cities] {
			seen[r.Cities] = true
			out = append(out, r.Cities)
		}
	}
	return out
}

// gate runs both checks and returns the violations (empty = pass) and
// informational notes (always worth printing).
func gate(committed, measured *benchFile, cfg gateConfig) (violations, notes []string) {
	compared := 0
	for _, size := range committed.sizes() {
		want, ok := committed.ratio(size)
		if !ok {
			continue
		}
		got, ok := measured.ratio(size)
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%d cities: committed snapshot has a pooled/sequential pair but the measured file does not", size))
			continue
		}
		compared++
		limit := want * (1 + cfg.Tolerance)
		if got > limit {
			violations = append(violations,
				fmt.Sprintf("%d cities: pooled/sequential ratio %.3f exceeds committed %.3f + %.0f%% tolerance (limit %.3f)",
					size, got, want, cfg.Tolerance*100, limit))
		} else {
			notes = append(notes,
				fmt.Sprintf("%d cities: ratio %.3f within limit %.3f (committed %.3f)", size, got, limit, want))
		}
	}
	if compared == 0 {
		violations = append(violations, "no comparable pooled/sequential pairs between the two files")
	}
	if cfg.RequireSpeedup > 0 && cfg.RequireAt > 0 {
		if measured.NumCPU < cfg.MinCPUs {
			notes = append(notes,
				fmt.Sprintf("speedup check skipped: runner has %d CPUs, need %d for a pool to win", measured.NumCPU, cfg.MinCPUs))
		} else if r, ok := measured.ratio(cfg.RequireAt); !ok {
			violations = append(violations,
				fmt.Sprintf("speedup check impossible: measured file lacks a pooled/sequential pair at %d cities", cfg.RequireAt))
		} else if speedup := 1 / r; speedup < cfg.RequireSpeedup {
			violations = append(violations,
				fmt.Sprintf("%d cities: pooled speedup %.2fx below required %.2fx on a %d-CPU runner",
					cfg.RequireAt, speedup, cfg.RequireSpeedup, measured.NumCPU))
		} else {
			notes = append(notes,
				fmt.Sprintf("%d cities: pooled speedup %.2fx meets required %.2fx", cfg.RequireAt, speedup, cfg.RequireSpeedup))
		}
	}
	return violations, notes
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		committedPath = flag.String("committed", "BENCH_solve.json", "committed benchmark snapshot")
		measuredPath  = flag.String("measured", "", "freshly measured benchmark file (required)")
		tolerance     = flag.Float64("tolerance", 0.15, "allowed relative pooled/sequential ratio drift")
		reqSpeedup    = flag.Float64("require-speedup", 1.2, "required sequential/pooled speedup (0 disables)")
		reqAt         = flag.Int("require-at", 10000, "instance size the speedup is required at")
		minCPUs       = flag.Int("min-cpus", 4, "skip the speedup check below this many runner CPUs")
	)
	flag.Parse()
	if *measuredPath == "" {
		log.Fatal("-measured is required")
	}
	committed, err := load(*committedPath)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := load(*measuredPath)
	if err != nil {
		log.Fatal(err)
	}
	violations, notes := gate(committed, measured, gateConfig{
		Tolerance:      *tolerance,
		RequireSpeedup: *reqSpeedup,
		RequireAt:      *reqAt,
		MinCPUs:        *minCPUs,
	})
	for _, n := range notes {
		fmt.Println("ok:", n)
	}
	for _, v := range violations {
		fmt.Println("FAIL:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}
