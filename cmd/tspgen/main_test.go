package main

import (
	"testing"

	"cimsa/internal/tsplib"
)

func TestParseStyleAll(t *testing.T) {
	cases := map[string]tsplib.Style{
		"uniform":    tsplib.StyleUniform,
		"pcb":        tsplib.StylePCB,
		"clustered":  tsplib.StyleClustered,
		"geographic": tsplib.StyleGeographic,
		"pla":        tsplib.StylePLA,
	}
	for name, want := range cases {
		got, err := parseStyle(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("parseStyle(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseStyleRejectsUnknown(t *testing.T) {
	if _, err := parseStyle("hexagonal"); err == nil {
		t.Fatal("unknown style accepted")
	}
}
