// Command tspgen writes a synthetic TSP instance in TSPLIB95 format.
// The spatial style follows the name prefix (pcb/rl/pla/usa) or can be
// forced with -style.
//
// Usage:
//
//	tspgen -name pcb3038 > pcb3038.tsp       # registry clone (same as the benches use)
//	tspgen -n 5000 -style clustered -seed 2 > custom.tsp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cimsa/internal/tsplib"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tspgen: ")
	var (
		name  = flag.String("name", "", "registry instance to synthesize (overrides -n/-style)")
		n     = flag.Int("n", 1000, "number of cities")
		style = flag.String("style", "uniform", "uniform | pcb | clustered | geographic | pla")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *tsplib.Instance
	if *name != "" {
		loaded, err := tsplib.Load(*name)
		if err != nil {
			log.Fatal(err)
		}
		in = loaded
	} else {
		st, err := parseStyle(*style)
		if err != nil {
			log.Fatal(err)
		}
		in = tsplib.Generate(fmt.Sprintf("%s%d", *style, *n), *n, st, *seed)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tsplib.Write(w, in); err != nil {
		log.Fatal(err)
	}
}

func parseStyle(s string) (tsplib.Style, error) {
	switch s {
	case "uniform":
		return tsplib.StyleUniform, nil
	case "pcb":
		return tsplib.StylePCB, nil
	case "clustered":
		return tsplib.StyleClustered, nil
	case "geographic":
		return tsplib.StyleGeographic, nil
	case "pla":
		return tsplib.StylePLA, nil
	default:
		return 0, fmt.Errorf("unknown style %q", s)
	}
}
