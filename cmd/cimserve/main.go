// Command cimserve exposes the clustered noisy-CIM annealer as a
// long-lived HTTP job service: clients submit TSP solves, poll or
// stream progress, cancel runs, and scrape service metrics — many
// clients multiplexed onto a bounded pool of solver slots, the way the
// paper's chip time-multiplexes cluster windows onto one CIM array.
//
// Usage:
//
//	cimserve -addr :8080 -concurrency 4 -queue 128 -ttl 15m
//
// Submit a job:
//
//	curl -s localhost:8080/v1/jobs -d '{"generate":{"name":"pcb-like","n":10000,"seed":7},
//	  "options":{"pmax":3,"seed":1,"parallel":true,"skip_hardware":true}}'
//
// Stream its progress (SSE):
//
//	curl -N localhost:8080/v1/jobs/<id>/events
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cimsa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cimserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		concurrency = flag.Int("concurrency", 2, "solver slots (jobs solving at once)")
		queue       = flag.Int("queue", 64, "wait-queue depth; beyond it submissions get 429")
		ttl         = flag.Duration("ttl", 15*time.Minute, "how long finished results stay fetchable")
		replay      = flag.Int("replay", 512, "per-job SSE replay buffer (events kept for reconnects)")
		maxN        = flag.Int("max-n", 200000, "largest instance (cities) accepted; 0 = unlimited")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before solves are cancelled")
		stateDir    = flag.String("state-dir", "", "persist jobs and solver checkpoints here; on boot, interrupted jobs are re-enqueued and resume mid-solve")
		ckptEvery   = flag.Int("checkpoint-every", 1, "with -state-dir: write one solver snapshot per this many write-back epochs")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		ResultTTL:     *ttl,
		ReplayBuffer:  *replay,
		Logf:          log.Printf,
	}
	var recovered []serve.JournalEntry
	if *stateDir != "" {
		journal, entries, err := serve.OpenJournal(filepath.Join(*stateDir, "journal.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		cfg.Journal = journal
		cfg.CheckpointDir = filepath.Join(*stateDir, "checkpoints")
		cfg.CheckpointEvery = *ckptEvery
		recovered = entries
	}
	sched := serve.NewScheduler(cfg)
	srv := serve.NewServer(sched)
	srv.MaxN = *maxN
	if len(recovered) > 0 {
		log.Printf("recovering %d interrupted job(s) from %s", len(recovered), *stateDir)
		n := srv.Recover(recovered)
		log.Printf("recovery done: %d job(s) re-enqueued", n)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down: draining for up to %v", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the solver queue.
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := sched.Shutdown(shutCtx); err != nil {
			log.Printf("scheduler shutdown: %v (in-flight solves cancelled)", err)
		}
	}()

	log.Printf("listening on %s (%d slots, queue %d, ttl %v)", *addr, *concurrency, *queue, *ttl)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
}
