// Command cimserve exposes the repository's solvers as a long-lived
// HTTP job service: clients submit solve jobs — TSP via the clustered
// noisy-CIM annealer, plus maxcut / ising / qubo on the generic spin
// substrate — poll or stream progress, cancel runs, and scrape service
// metrics. Many clients are multiplexed onto a bounded pool of solver
// slots, the way the paper's chip time-multiplexes cluster windows
// onto one CIM array.
//
// Usage:
//
//	cimserve -addr :8080 -concurrency 4 -queue 128 -ttl 15m
//
// Submit a TSP job (legacy top-level schema, still accepted):
//
//	curl -s localhost:8080/v1/jobs -d '{"generate":{"name":"pcb-like","n":10000,"seed":7},
//	  "options":{"pmax":3,"seed":1,"parallel":true,"skip_hardware":true}}'
//
// Submit a Max-Cut job (problem-section schema):
//
//	curl -s localhost:8080/v1/jobs -d '{"maxcut":{"generate":{"n":512,"density":0.05,"seed":13},
//	  "sweeps":400,"seed":1}}'
//
// Stream its progress (SSE):
//
//	curl -N localhost:8080/v1/jobs/<id>/events
//
// Fleet mode (see README "Fleet quick-start"): -role coordinator keeps
// the full public API and leases journaled jobs to workers; -role
// worker joins a coordinator, solves claimed jobs and ships checkpoints
// back; -role standalone (the default) is the single-node service,
// byte-for-byte today's behavior.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cimsa/internal/fairsched"
	"cimsa/internal/fleet"
	"cimsa/internal/problem"
	"cimsa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cimserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		concurrency = flag.Int("concurrency", 2, "solver slots (jobs solving at once); in coordinator mode this bounds in-flight fleet dispatches, so size it to fleet capacity")
		queue       = flag.Int("queue", 64, "wait-queue depth; beyond it submissions get 429")
		ttl         = flag.Duration("ttl", 15*time.Minute, "how long finished results stay fetchable")
		replay      = flag.Int("replay", 512, "per-job SSE replay buffer (events kept for reconnects)")
		maxN        = flag.Int("max-n", 200000, "largest tsp instance (cities) accepted; 0 = unlimited")
		maxVertices = flag.Int("max-vertices", 100000, "largest maxcut graph (vertices) accepted; 0 = unlimited")
		maxEdges    = flag.Int("max-edges", 2000000, "largest maxcut graph (edges) accepted; 0 = unlimited")
		maxSpins    = flag.Int("max-spins", 2048, "largest ising/qubo system (spins) accepted — the dense coupling matrix is spins²; 0 = unlimited")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before solves are cancelled")
		stateDir    = flag.String("state-dir", "", "persist jobs and solver checkpoints here; on boot, interrupted jobs are re-enqueued and resume mid-solve (required for -role coordinator)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "with -state-dir: write one solver snapshot per this many write-back epochs")
		tenantsCfg  = flag.String("tenants-config", "", "JSON file of per-tenant fair-scheduling weights and quotas (see README); absent means one unlimited lane per tenant")
		cacheEntr   = flag.Int("cache-entries", 0, "result-cache capacity in entries; with -cache-bytes both 0, caching is off")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result-cache capacity in marshalled bytes; 0 = no byte bound")

		role      = flag.String("role", "standalone", "standalone | coordinator | worker")
		join      = flag.String("join", "", "worker: coordinator base URL, e.g. http://host:8080")
		fleetAuth = flag.String("fleet-auth", os.Getenv("CIMSERVE_FLEET_AUTH"), "shared secret for /v1/fleet/* (X-Fleet-Auth header; default $CIMSERVE_FLEET_AUTH); empty leaves the claim protocol open — only safe when the listener is network-isolated")
		nodeName  = flag.String("node", "", "worker: fleet node name (default: hostname, folded to the allowed alphabet)")
		lease     = flag.Duration("lease", 15*time.Second, "coordinator: how long a worker's claim stands without a renewing touch")
		heartbeat = flag.Duration("heartbeat", 0, "worker: lease-renewal cadence (default: lease/3)")
		poll      = flag.Duration("poll", 250*time.Millisecond, "worker: idle claim-poll cadence")
		scratch   = flag.String("scratch-dir", "", "worker: local per-job checkpoint scratch (default: under the OS temp dir)")
	)
	flag.Parse()

	limits := problem.Limits{
		MaxCities:   *maxN,
		MaxVertices: *maxVertices,
		MaxEdges:    *maxEdges,
		MaxSpins:    *maxSpins,
	}

	switch *role {
	case "standalone", "coordinator":
	case "worker":
		runWorker(workerArgs{
			addr:      *addr,
			join:      *join,
			auth:      *fleetAuth,
			node:      *nodeName,
			lease:     *lease,
			heartbeat: *heartbeat,
			poll:      *poll,
			scratch:   *scratch,
			limits:    limits,
		})
		return
	default:
		log.Fatalf("unknown -role %q (standalone | coordinator | worker)", *role)
	}

	cfg := serve.Config{
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		ResultTTL:     *ttl,
		ReplayBuffer:  *replay,
		CacheEntries:  *cacheEntr,
		CacheBytes:    *cacheBytes,
		Logf:          log.Printf,
	}
	if *tenantsCfg != "" {
		data, err := os.ReadFile(*tenantsCfg)
		if err != nil {
			log.Fatal(err)
		}
		tc, err := fairsched.ParseConfig(data)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = tc
		log.Printf("tenant policies loaded from %s (%d explicit tenant(s))", *tenantsCfg, len(tc.Tenants))
	}
	if *cacheEntr > 0 || *cacheBytes > 0 {
		log.Printf("result cache on (%d entries, %d bytes)", *cacheEntr, *cacheBytes)
	}
	var recovered []serve.JournalEntry
	var journal *serve.Journal
	if *stateDir != "" {
		var err error
		var entries []serve.JournalEntry
		journal, entries, err = serve.OpenJournal(filepath.Join(*stateDir, "journal.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		cfg.Journal = journal
		cfg.CheckpointDir = filepath.Join(*stateDir, "checkpoints")
		cfg.CheckpointEvery = *ckptEvery
		recovered = entries
	}

	var coord *fleet.Coordinator
	if *role == "coordinator" {
		if *stateDir == "" {
			log.Fatal("-role coordinator requires -state-dir: claims are journaled and checkpoints shipped there")
		}
		coord = fleet.NewCoordinator(fleet.Config{
			Lease:   *lease,
			Journal: journal,
			Auth:    *fleetAuth,
			Logf:    log.Printf,
		})
		cfg.Fleet = coord
		if *fleetAuth == "" {
			log.Printf("warning: -fleet-auth empty: /v1/fleet/* is open — any network peer can register, claim jobs and post results; set a shared secret unless the listener is network-isolated")
		}
	}

	sched := serve.NewScheduler(cfg)
	srv := serve.NewServer(sched)
	srv.Limits = limits
	handler := http.Handler(srv.Handler())
	if coord != nil {
		srv.Fleet = coord.Stats
		sched.Metrics.FleetStats = coord.Stats
		mux := http.NewServeMux()
		mux.Handle("/", srv.Handler())
		coord.Routes(mux)
		handler = mux
	}
	if len(recovered) > 0 {
		log.Printf("recovering %d interrupted job(s) from %s", len(recovered), *stateDir)
		n := srv.Recover(recovered)
		log.Printf("recovery done: %d job(s) re-enqueued", n)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if coord != nil {
		// Sweep expired leases on a cadence well under the lease, so a dead
		// node's job is back in the queue within a fraction of one lease.
		go func() {
			t := time.NewTicker(*lease / 4)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := coord.Sweep(); n > 0 {
						log.Printf("fleet: %d lease(s) expired and requeued", n)
					}
				}
			}
		}()
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down: draining for up to %v", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the solver queue.
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := sched.Shutdown(shutCtx); err != nil {
			log.Printf("scheduler shutdown: %v (in-flight solves cancelled)", err)
		}
	}()

	log.Printf("listening on %s as %s (%d slots, queue %d, ttl %v)", *addr, *role, *concurrency, *queue, *ttl)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
}

type workerArgs struct {
	addr      string
	join      string
	auth      string
	node      string
	lease     time.Duration
	heartbeat time.Duration
	poll      time.Duration
	scratch   string
	limits    problem.Limits
}

// runWorker joins a coordinator and serves claims until signalled. The
// worker's own listener carries only /healthz and /metrics — the public
// job API lives on the coordinator.
func runWorker(a workerArgs) {
	if a.join == "" {
		log.Fatal("-role worker requires -join <coordinator URL>")
	}
	node := a.node
	if node == "" {
		host, err := os.Hostname()
		if err != nil {
			log.Fatalf("-node not set and hostname unavailable: %v", err)
		}
		node = foldNodeName(host)
	}
	if !fairsched.ValidName(node) {
		log.Fatalf("-node %q invalid: need 1..64 bytes of [A-Za-z0-9._-]", node)
	}
	hb := a.heartbeat
	if hb <= 0 {
		hb = a.lease / 3
	}
	worker, err := fleet.NewWorker(fleet.WorkerConfig{
		Node:      node,
		Transport: &fleet.Client{BaseURL: a.join, Auth: a.auth},
		BuildTask: func(source json.RawMessage) (problem.Task, error) {
			var req serve.SubmitRequest
			if err := json.Unmarshal(source, &req); err != nil {
				return nil, fmt.Errorf("parsing job source: %w", err)
			}
			return serve.TaskFor(&req, a.limits)
		},
		ScratchDir:     a.scratch,
		HeartbeatEvery: hb,
		PollEvery:      a.poll,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":      "ok",
			"role":        "worker",
			"node":        node,
			"coordinator": a.join,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		worker.WriteMetrics(w)
	})
	httpSrv := &http.Server{Addr: a.addr, Handler: mux}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("worker %s joining %s (heartbeat %v, poll %v)", node, a.join, hb, a.poll)
	if err := worker.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("worker: %v", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
}

// foldNodeName maps a hostname onto the fleet's allowed alphabet
// (letters, digits, dot, underscore, dash; max 64 bytes).
func foldNodeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(out) < 64; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "worker"
	}
	return string(out)
}
