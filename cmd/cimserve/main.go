// Command cimserve exposes the repository's solvers as a long-lived
// HTTP job service: clients submit solve jobs — TSP via the clustered
// noisy-CIM annealer, plus maxcut / ising / qubo on the generic spin
// substrate — poll or stream progress, cancel runs, and scrape service
// metrics. Many clients are multiplexed onto a bounded pool of solver
// slots, the way the paper's chip time-multiplexes cluster windows
// onto one CIM array.
//
// Usage:
//
//	cimserve -addr :8080 -concurrency 4 -queue 128 -ttl 15m
//
// Submit a TSP job (legacy top-level schema, still accepted):
//
//	curl -s localhost:8080/v1/jobs -d '{"generate":{"name":"pcb-like","n":10000,"seed":7},
//	  "options":{"pmax":3,"seed":1,"parallel":true,"skip_hardware":true}}'
//
// Submit a Max-Cut job (problem-section schema):
//
//	curl -s localhost:8080/v1/jobs -d '{"maxcut":{"generate":{"n":512,"density":0.05,"seed":13},
//	  "sweeps":400,"seed":1}}'
//
// Stream its progress (SSE):
//
//	curl -N localhost:8080/v1/jobs/<id>/events
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cimsa/internal/fairsched"
	"cimsa/internal/problem"
	"cimsa/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cimserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		concurrency = flag.Int("concurrency", 2, "solver slots (jobs solving at once)")
		queue       = flag.Int("queue", 64, "wait-queue depth; beyond it submissions get 429")
		ttl         = flag.Duration("ttl", 15*time.Minute, "how long finished results stay fetchable")
		replay      = flag.Int("replay", 512, "per-job SSE replay buffer (events kept for reconnects)")
		maxN        = flag.Int("max-n", 200000, "largest tsp instance (cities) accepted; 0 = unlimited")
		maxVertices = flag.Int("max-vertices", 100000, "largest maxcut graph (vertices) accepted; 0 = unlimited")
		maxEdges    = flag.Int("max-edges", 2000000, "largest maxcut graph (edges) accepted; 0 = unlimited")
		maxSpins    = flag.Int("max-spins", 2048, "largest ising/qubo system (spins) accepted — the dense coupling matrix is spins²; 0 = unlimited")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before solves are cancelled")
		stateDir    = flag.String("state-dir", "", "persist jobs and solver checkpoints here; on boot, interrupted jobs are re-enqueued and resume mid-solve")
		ckptEvery   = flag.Int("checkpoint-every", 1, "with -state-dir: write one solver snapshot per this many write-back epochs")
		tenantsCfg  = flag.String("tenants-config", "", "JSON file of per-tenant fair-scheduling weights and quotas (see README); absent means one unlimited lane per tenant")
		cacheEntr   = flag.Int("cache-entries", 0, "result-cache capacity in entries; with -cache-bytes both 0, caching is off")
		cacheBytes  = flag.Int64("cache-bytes", 0, "result-cache capacity in marshalled bytes; 0 = no byte bound")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxConcurrent: *concurrency,
		QueueDepth:    *queue,
		ResultTTL:     *ttl,
		ReplayBuffer:  *replay,
		CacheEntries:  *cacheEntr,
		CacheBytes:    *cacheBytes,
		Logf:          log.Printf,
	}
	if *tenantsCfg != "" {
		data, err := os.ReadFile(*tenantsCfg)
		if err != nil {
			log.Fatal(err)
		}
		tc, err := fairsched.ParseConfig(data)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = tc
		log.Printf("tenant policies loaded from %s (%d explicit tenant(s))", *tenantsCfg, len(tc.Tenants))
	}
	if *cacheEntr > 0 || *cacheBytes > 0 {
		log.Printf("result cache on (%d entries, %d bytes)", *cacheEntr, *cacheBytes)
	}
	var recovered []serve.JournalEntry
	if *stateDir != "" {
		journal, entries, err := serve.OpenJournal(filepath.Join(*stateDir, "journal.jsonl"))
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		cfg.Journal = journal
		cfg.CheckpointDir = filepath.Join(*stateDir, "checkpoints")
		cfg.CheckpointEvery = *ckptEvery
		recovered = entries
	}
	sched := serve.NewScheduler(cfg)
	srv := serve.NewServer(sched)
	srv.Limits = problem.Limits{
		MaxCities:   *maxN,
		MaxVertices: *maxVertices,
		MaxEdges:    *maxEdges,
		MaxSpins:    *maxSpins,
	}
	if len(recovered) > 0 {
		log.Printf("recovering %d interrupted job(s) from %s", len(recovered), *stateDir)
		n := srv.Recover(recovered)
		log.Printf("recovery done: %d job(s) re-enqueued", n)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down: draining for up to %v", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the solver queue.
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := sched.Shutdown(shutCtx); err != nil {
			log.Printf("scheduler shutdown: %v (in-flight solves cancelled)", err)
		}
	}()

	log.Printf("listening on %s (%d slots, queue %d, ttl %v)", *addr, *concurrency, *queue, *ttl)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
}
