// Command cimexperiments regenerates every table and figure of the
// paper's evaluation and prints them in order. Use -run to select one
// experiment, -scale to shrink the solved instances for a quick pass
// (hardware metrics always use the full published sizes).
//
// Usage:
//
//	cimexperiments                      # everything, full scale (minutes)
//	cimexperiments -scale 0.1           # quick pass
//	cimexperiments -run table1,fig6
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cimsa/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cimexperiments: ")
	var (
		run     = flag.String("run", "all", "comma list: fig1,table1,fig6,fig7,table2,table3,speedup,baselines,fabrics,stability,convergence,ablations,relatedwork")
		scale   = flag.Float64("scale", 1.0, "instance scale in (0,1] for solved workloads")
		seed    = flag.Uint64("seed", 1, "seed")
		samples = flag.Int("samples", 1000, "Fig. 6 Monte Carlo samples")
		workers = flag.Int("workers", 0, "solver worker-pool size (0 = sequential; results identical for any value)")
		csvDir  = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	writeCSV := func(name string, emit func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := emit(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, MCSamples: *samples, Workers: *workers}
	selected := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(s)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }
	out := os.Stdout

	runStep := func(name string, f func() error) {
		if !want(name) {
			return
		}
		start := time.Now()
		fmt.Fprintf(out, "==== %s ====\n", name)
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(out, "(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	runStep("fig1", func() error {
		rows := experiments.Fig1()
		experiments.RenderFig1(out, rows)
		writeCSV("fig1.csv", func(w io.Writer) error { return experiments.Fig1CSV(w, rows) })
		return nil
	})
	runStep("table1", func() error {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		experiments.RenderTable1(out, rows)
		writeCSV("table1.csv", func(w io.Writer) error { return experiments.Table1CSV(w, rows) })
		return nil
	})
	runStep("fig6", func() error {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFig6(out, res)
		writeCSV("fig6.csv", func(w io.Writer) error { return experiments.Fig6CSV(w, res) })
		return nil
	})
	runStep("fig7", func() error {
		rows, err := experiments.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		experiments.RenderFig7(out, rows)
		writeCSV("fig7.csv", func(w io.Writer) error { return experiments.Fig7CSV(w, rows) })
		return nil
	})
	runStep("table2", func() error {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		experiments.RenderTable2(out, rows)
		return nil
	})
	runStep("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		experiments.RenderTable3(out, rows)
		return nil
	})
	runStep("speedup", func() error {
		rows, err := experiments.Speedup(cfg)
		if err != nil {
			return err
		}
		experiments.RenderSpeedup(out, rows)
		writeCSV("speedup.csv", func(w io.Writer) error { return experiments.SpeedupCSV(w, rows) })
		return nil
	})
	runStep("baselines", func() error {
		rows, err := experiments.Baselines(cfg)
		if err != nil {
			return err
		}
		experiments.RenderBaselines(out, rows)
		return nil
	})
	runStep("fabrics", func() error {
		rows, err := experiments.FabricComparison(cfg)
		if err != nil {
			return err
		}
		experiments.RenderFabricComparison(out, rows)
		writeCSV("fabrics.csv", func(w io.Writer) error { return experiments.FabricsCSV(w, rows) })
		return nil
	})
	runStep("stability", func() error {
		rows, err := experiments.Stability(cfg, 5)
		if err != nil {
			return err
		}
		experiments.RenderStability(out, rows)
		return nil
	})
	runStep("convergence", func() error {
		series, err := experiments.Convergence(cfg)
		if err != nil {
			return err
		}
		experiments.RenderConvergence(out, series)
		writeCSV("convergence.csv", func(w io.Writer) error { return experiments.ConvergenceCSV(w, series) })
		return nil
	})
	runStep("ablations", func() error {
		modes, err := experiments.AblationModes(cfg)
		if err != nil {
			return err
		}
		experiments.RenderAblations(out, "randomness sources (pcb3038)", modes)
		sched, err := experiments.AblationSchedule(cfg)
		if err != nil {
			return err
		}
		experiments.RenderAblations(out, "noise schedules (rl5915)", sched)
		par, err := experiments.AblationParallelism(cfg)
		if err != nil {
			return err
		}
		experiments.RenderParallelism(out, par)
		prec, err := experiments.AblationPrecision(cfg)
		if err != nil {
			return err
		}
		experiments.RenderPrecision(out, prec)
		iters, err := experiments.AblationIterations(cfg)
		if err != nil {
			return err
		}
		experiments.RenderIterations(out, iters)
		return nil
	})
	runStep("relatedwork", func() error {
		rows, err := experiments.RelatedWork(cfg)
		if err != nil {
			return err
		}
		experiments.RenderRelatedWork(out, rows)
		return nil
	})
}
