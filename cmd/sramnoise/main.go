// Command sramnoise reproduces Fig. 6(b): the Monte Carlo pseudo-read
// error rate of the noisy SRAM bit cell versus supply voltage, with the
// bit-line capacitance sharpness comparison and the fitted sigmoid the
// annealer consumes.
//
// Usage:
//
//	sramnoise                    # paper settings (1000 samples)
//	sramnoise -samples 200 -step 0.02 -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cimsa/internal/device"
	"cimsa/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sramnoise: ")
	var (
		samples = flag.Int("samples", 1000, "Monte Carlo population (paper: 1000)")
		seed    = flag.Uint64("seed", 1, "fabrication seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of the table")
		sigma   = flag.Float64("sigma", 0, "override per-device Vth mismatch sigma (V)")
		cbl     = flag.Float64("cbl", 0, "override relative bit-line capacitance")
		kacc    = flag.Float64("kaccess", 0, "override access transistor K (A/V²)")
	)
	flag.Parse()

	// Custom cell parameters run the full device Monte Carlo + sigmoid
	// fit rather than the committed defaults, so designers can explore
	// mismatch corners and bit-line lengths.
	p := device.Params16nm()
	custom := false
	if *sigma > 0 {
		p.SigmaVth = *sigma
		custom = true
	}
	if *cbl > 0 {
		p.CBLRel = *cbl
		custom = true
	}
	if *kacc > 0 {
		p.KAccess = *kacc
		custom = true
	}
	if custom {
		vdds := device.SweepVDD(0.04)
		rates := device.ErrorRateCurve(p, vdds, *samples, *seed)
		hi := p
		hi.CBLRel *= 4
		ratesHi := device.ErrorRateCurve(hi, vdds, *samples, *seed)
		if *csv {
			fmt.Println("vdd_mv,error_rate,error_rate_4x_cbl")
			for i := range vdds {
				fmt.Printf("%.0f,%.5f,%.5f\n", vdds[i]*1000, rates[i], ratesHi[i])
			}
			return
		}
		fmt.Printf("custom cell: sigmaVth=%.3f V, C_BL=%.1fx, K_access=%.2g A/V²\n",
			p.SigmaVth, p.CBLRel, p.KAccess)
		for i := range vdds {
			fmt.Printf("%8.0f %12.4f %16.4f\n", vdds[i]*1000, rates[i], ratesHi[i])
		}
		if fit, err := device.FitSigmoid(vdds, rates); err == nil {
			fmt.Printf("sigmoid fit: max %.3f, V50 %.0f mV, slope %.0f mV\n",
				fit.MaxRate, fit.V50*1000, fit.Slope*1000)
		}
		return
	}

	res, err := experiments.Fig6(experiments.Config{Seed: *seed, MCSamples: *samples})
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Println("vdd_mv,error_rate,error_rate_4x_cbl")
		for _, p := range res.Points {
			fmt.Printf("%.0f,%.5f,%.5f\n", p.VDD*1000, p.Rate, p.RateHighCBL)
		}
		return
	}
	experiments.RenderFig6(os.Stdout, res)
	def := device.DefaultErrorModel()
	fmt.Printf("committed model: max %.3f, V50 %.0f mV, slope %.0f mV\n",
		def.MaxRate, def.V50*1000, def.Slope*1000)
}
