// Non-TSP subcommands. "cimanneal maxcut|ising|qubo" builds the task
// through the same problem-registry adapters the cimserve service uses,
// so the CLI and the service share one parse → validate → solve path
// and produce bit-identical results for the same spec and seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"cimsa/internal/maxcut"
	"cimsa/internal/problem"
	"cimsa/internal/problem/isingprob"
	"cimsa/internal/problem/maxcutprob"
)

func runProblem(name string, args []string) {
	fs := flag.NewFlagSet("cimanneal "+name, flag.ExitOnError)
	var (
		n         = fs.Int("n", 512, "size of the generated instance (vertices / spins / variables)")
		density   = fs.Float64("density", 0.05, "edge or coupling density of the generated instance")
		instSeed  = fs.Uint64("instance-seed", 1, "seed for instance generation")
		sweeps    = fs.Int("sweeps", 0, "sweep/step budget (0 = the problem's default)")
		seed      = fs.Uint64("seed", 1, "annealing seed")
		algorithm = fs.String("algorithm", "", `ising/qubo backend: "metropolis" (default) or "sca"`)
		timeout   = fs.Duration("timeout", 0, "abort the solve after this long (0 = no limit)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("unexpected argument %q after %s flags", fs.Arg(0), name)
	}

	task, err := buildGeneratedTask(name, *n, *density, *instSeed, *sweeps, *seed, *algorithm)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := task.Solve(ctx, problem.Run{})
	if err != nil {
		log.Fatal(err)
	}
	printProblemResult(res, time.Since(start))
}

// buildGeneratedTask maps the shared subcommand flags onto the
// problem's generate spec.
func buildGeneratedTask(name string, n int, density float64, instSeed uint64, sweeps int, seed uint64, algorithm string) (problem.Task, error) {
	if algorithm != "" && name == "maxcut" {
		return nil, fmt.Errorf("-algorithm applies to ising/qubo only")
	}
	switch name {
	case "maxcut":
		return maxcutprob.TaskFromSpec(&maxcutprob.Spec{
			Generate: &maxcutprob.GenerateSpec{N: n, Density: density, Seed: instSeed},
			Sweeps:   sweeps,
			Seed:     seed,
		}, problem.Limits{})
	case "ising":
		return isingprob.TaskFromSpec(&isingprob.Spec{
			Generate:  &isingprob.GenerateSpec{N: n, Density: density, Seed: instSeed},
			Algorithm: algorithm,
			Sweeps:    sweeps,
			Seed:      seed,
		}, problem.Limits{})
	case "qubo":
		return isingprob.QUBOTaskFromSpec(&isingprob.QUBOSpec{
			Generate:  &isingprob.GenerateSpec{N: n, Density: density, Seed: instSeed},
			Algorithm: algorithm,
			Sweeps:    sweeps,
			Seed:      seed,
		}, problem.Limits{})
	default:
		return nil, fmt.Errorf("unknown problem %q", name)
	}
}

func printProblemResult(res *problem.Result, elapsed time.Duration) {
	fmt.Printf("problem       %s\n", res.Problem)
	fmt.Printf("instance      %s (size %d)\n", res.Instance, res.N)
	fmt.Printf("objective     %.4f\n", res.Objective)
	fmt.Printf("iterations    %d in %v\n", res.Iterations, elapsed.Round(time.Millisecond))
	switch det := res.Detail.(type) {
	case maxcut.Result:
		left := 0
		for _, s := range det.Assign {
			if s > 0 {
				left++
			}
		}
		fmt.Printf("cut           %.0f (%.1f%% of total weight), partition %d / %d\n",
			det.Cut, 100*det.Ratio, left, len(det.Assign)-left)
	case isingprob.IsingDetail:
		fmt.Printf("energy        %.4f (best seen %.4f)\n", det.Energy, det.BestEnergy)
		if det.Proposed > 0 {
			fmt.Printf("acceptance    %d/%d flips\n", det.Accepted, det.Proposed)
		}
	case isingprob.QUBODetail:
		on := 0
		for _, b := range det.Bits {
			on += int(b)
		}
		fmt.Printf("assignment    %d of %d bits set, ising energy %.4f\n",
			on, len(det.Bits), det.Energy)
	}
}
