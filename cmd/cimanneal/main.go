// Command cimanneal solves a TSP instance with the clustered noisy-CIM
// annealer and prints the tour quality, annealing statistics and the
// modelled hardware cost.
//
// Usage:
//
//	cimanneal -name pcb3038                 # built-in registry instance
//	cimanneal -file problem.tsp             # TSPLIB95 file
//	cimanneal -random 5000                  # synthetic uniform instance
//	cimanneal -name rl5915 -pmax 4 -seed 7 -tour out.txt
//
// Other problem types run as subcommands through the same registry
// adapters the cimserve service uses:
//
//	cimanneal maxcut -n 512 -density 0.05 -sweeps 400
//	cimanneal ising -n 64 -density 0.5 -algorithm sca
//	cimanneal qubo -n 32 -density 0.3 -seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"

	"cimsa"
	"cimsa/internal/tsplib"
	"cimsa/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cimanneal: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "maxcut", "ising", "qubo":
			runProblem(os.Args[1], os.Args[2:])
			return
		}
	}
	runTSP()
}

func runTSP() {
	var (
		name     = flag.String("name", "", "built-in instance name (see -list)")
		file     = flag.String("file", "", "TSPLIB95 .tsp file to solve")
		random   = flag.Int("random", 0, "generate a uniform random instance of this size")
		pmax     = flag.Int("pmax", 3, "maximum cluster size (2-8)")
		seed     = flag.Uint64("seed", 1, "random seed")
		mode     = flag.String("mode", "noisy-cim", "randomness source: noisy-cim | metropolis | greedy | noisy-spins")
		fabric   = flag.String("fabric", "", "noise substrate: sram (default) | mram | fefet | clean")
		fabSeed  = flag.Uint64("fabric-seed", 0, "pin the fabricated chip explicitly (0 derives it from -seed)")
		restarts = flag.Int("restarts", 1, "independent replicas; the best tour wins")
		parallel = flag.Bool("parallel", false, "update non-adjacent clusters across a worker pool (GOMAXPROCS workers)")
		workers  = flag.String("workers", "0", "worker-pool size: a count, 0 (GOMAXPROCS with -parallel), or auto (pick from instance size; results identical for any value)")
		timeout  = flag.Duration("timeout", 0, "abort the solve after this long, e.g. 90s or 10m (0 = no limit)")
		ckptDir  = flag.String("checkpoint", "", "write durable solve checkpoints to this directory (one file per instance+seed)")
		ckptN    = flag.Int("checkpoint-every", 1, "with -checkpoint: write one snapshot per this many write-back epochs")
		resume   = flag.Bool("resume", false, "with -checkpoint: continue from the directory's checkpoint if one exists")
		killApt  = flag.Int("kill-after", 0, "exit uncleanly (status 137) after this many checkpoint writes — crash testing only")
		tourOut  = flag.String("tour", "", "write the visiting order to this file")
		svgOut   = flag.String("svg", "", "render the tour to this SVG file")
		noRef    = flag.Bool("noref", false, "skip the classical reference solver")
		noHW     = flag.Bool("nohw", false, "skip the hardware PPA report")
		listOnly = flag.Bool("list", false, "list built-in instances and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, n := range cimsa.InstanceNames() {
			fmt.Println(n)
		}
		return
	}

	in, err := loadInstance(*name, *file, *random, *seed)
	if err != nil {
		log.Fatal(err)
	}
	nWorkers, err := parseWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := cimsa.Options{
		PMax:         *pmax,
		Seed:         *seed,
		Reference:    !*noRef,
		SkipHardware: *noHW,
		Mode:         *mode,
		Fabric:       *fabric,
		FabricSeed:   *fabSeed,
		Restarts:     *restarts,
		Parallel:     *parallel,
		Workers:      nWorkers,
	}
	if *ckptDir != "" {
		opt.Checkpoint = cimsa.Checkpoint{
			Dir:         *ckptDir,
			EveryEpochs: *ckptN,
			Resume:      *resume,
			OnResume: func(path string) {
				log.Printf("resuming from checkpoint %s", path)
			},
		}
		writes := 0
		opt.Checkpoint.OnWrite = func(path string) {
			writes++
			if *killApt > 0 && writes >= *killApt {
				// Crash-testing hook: die the way SIGKILL would, right
				// after a snapshot hit disk, with no cleanup at all.
				os.Exit(137)
			}
		}
		// SIGINT flushes a resumable snapshot before exiting: the solver
		// observes the cancellation at an iteration boundary and writes
		// its state through the checkpoint hook on the way out.
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt)
		defer stop()
	} else if *resume || *killApt > 0 {
		log.Fatal("-resume and -kill-after need -checkpoint")
	}
	rep, err := cimsa.SolveContext(ctx, in, opt)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("solve exceeded -timeout %v on %s (%d cities)", *timeout, in.Name, in.N())
		}
		if errors.Is(err, context.Canceled) && *ckptDir != "" {
			log.Printf("interrupted; state saved to %s", *ckptDir)
			log.Printf("resume with: -checkpoint %s -resume (and the same instance, seed and options)", *ckptDir)
			os.Exit(130)
		}
		log.Fatal(err)
	}

	fmt.Printf("instance      %s (%d cities)\n", rep.Instance, rep.N)
	fmt.Printf("tour length   %.0f\n", rep.Length)
	if rep.ReferenceLength > 0 {
		fmt.Printf("reference     %.0f (optimal ratio %.3f)\n", rep.ReferenceLength, rep.OptimalRatio)
	}
	st := rep.Solver
	fmt.Printf("annealing     %d levels, %d iterations, %d/%d swaps accepted\n",
		st.Levels, st.Iterations, st.Accepted, st.Proposed)
	fmt.Printf("dataflow      %d write-backs, %.1f kb inter-array boundary traffic\n",
		st.WriteBacks, float64(st.BoundaryTransferBits)/1000)
	if rep.Chip.AreaMM2 > 0 {
		c := rep.Chip
		fmt.Printf("hardware      %d windows in %d arrays, %.1f Mb SRAM\n",
			c.Windows, c.Arrays, float64(c.PhysicalWeightBits)/1e6)
		fmt.Printf("              %.2f mm², %.0f mW, time-to-solution %.1f µs, energy %.2f µJ\n",
			c.AreaMM2, c.PowerMW, c.LatencySeconds*1e6, c.EnergyJ*1e6)
	}

	if *tourOut != "" {
		f, err := os.Create(*tourOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tsplib.WriteTour(f, rep.Instance, rep.Tour); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tour written  %s (TSPLIB .tour format)\n", *tourOut)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("%s: %.0f", rep.Instance, rep.Length)
		if err := viz.WriteSVG(f, in, rep.Tour, viz.Options{ShowCities: in.N() <= 5000, Title: title}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg written   %s\n", *svgOut)
	}
}

// parseWorkers maps the -workers flag onto Options.Workers: "auto"
// becomes the WorkersAuto sentinel, anything else must be a
// non-negative count.
func parseWorkers(s string) (int, error) {
	if s == "auto" {
		return cimsa.WorkersAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("-workers must be a non-negative count or \"auto\", got %q", s)
	}
	return n, nil
}

func loadInstance(name, file string, random int, seed uint64) (*cimsa.Instance, error) {
	switch {
	case name != "" && file == "" && random == 0:
		return cimsa.LoadNamed(name)
	case file != "" && name == "" && random == 0:
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return cimsa.LoadInstance(f)
	case random > 0 && name == "" && file == "":
		return cimsa.GenerateInstance(fmt.Sprintf("random%d", random), random, seed), nil
	default:
		return nil, fmt.Errorf("specify exactly one of -name, -file, -random")
	}
}
