package main

import (
	"context"
	"testing"

	"cimsa/internal/maxcut"
	"cimsa/internal/problem"
)

func solveGenerated(t *testing.T, name string, n int, density float64, instSeed uint64, sweeps int, seed uint64, algorithm string) *problem.Result {
	t.Helper()
	task, err := buildGeneratedTask(name, n, density, instSeed, sweeps, seed, algorithm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := task.Solve(context.Background(), problem.Run{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The subcommand path must be the registry path: the maxcut subcommand
// with given flags solves to exactly what the library produces.
func TestMaxCutSubcommandMatchesDirectSolve(t *testing.T) {
	res := solveGenerated(t, "maxcut", 64, 0.25, 9, 150, 4, "")
	direct, err := maxcut.Solve(maxcut.Random(64, 0.25, 9), 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != direct.Cut {
		t.Fatalf("subcommand cut %v != direct %v", res.Objective, direct.Cut)
	}
}

func TestIsingQUBOSubcommandsDeterministic(t *testing.T) {
	a := solveGenerated(t, "ising", 32, 0.5, 3, 40, 2, "")
	b := solveGenerated(t, "ising", 32, 0.5, 3, 40, 2, "")
	if a.Objective != b.Objective {
		t.Fatalf("ising subcommand not deterministic: %v vs %v", a.Objective, b.Objective)
	}
	q := solveGenerated(t, "qubo", 16, 0.4, 5, 30, 7, "sca")
	if q.Problem != "qubo" || q.N != 16 {
		t.Fatalf("qubo subcommand result %+v", q)
	}
}

func TestSubcommandFlagValidation(t *testing.T) {
	if _, err := buildGeneratedTask("maxcut", 16, 0.5, 1, 0, 1, "sca"); err == nil {
		t.Fatal("maxcut accepted -algorithm")
	}
	if _, err := buildGeneratedTask("vertexcover", 16, 0.5, 1, 0, 1, ""); err == nil {
		t.Fatal("unknown subcommand problem accepted")
	}
	if _, err := buildGeneratedTask("ising", 16, 0.5, 1, 0, 1, "bogus"); err == nil {
		t.Fatal("bogus ising algorithm accepted")
	}
}
