package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadInstanceByName(t *testing.T) {
	in, err := loadInstance("pcb442", "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 442 {
		t.Fatalf("loaded %d cities", in.N())
	}
}

func TestLoadInstanceRandom(t *testing.T) {
	in, err := loadInstance("", "", 77, 9)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 77 {
		t.Fatalf("generated %d cities", in.N())
	}
	// Deterministic for the same seed.
	again, err := loadInstance("", "", 77, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Cities {
		if in.Cities[i] != again.Cities[i] {
			t.Fatal("random instance not deterministic")
		}
	}
}

func TestLoadInstanceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.tsp")
	src := "NAME : toy\nTYPE : TSP\nDIMENSION : 3\nEDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1 0\n3 0 1\nEOF\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadInstance("", path, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 3 || in.Name != "toy" {
		t.Fatalf("parsed %s/%d", in.Name, in.N())
	}
}

func TestLoadInstanceRejectsAmbiguousFlags(t *testing.T) {
	cases := []struct {
		name, file string
		random     int
	}{
		{"", "", 0},
		{"pcb442", "x.tsp", 0},
		{"pcb442", "", 100},
		{"", "x.tsp", 100},
	}
	for _, c := range cases {
		if _, err := loadInstance(c.name, c.file, c.random, 1); err == nil {
			t.Errorf("combination %+v accepted", c)
		}
	}
}

func TestLoadInstanceMissingFile(t *testing.T) {
	if _, err := loadInstance("", "/nonexistent/foo.tsp", 0, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
