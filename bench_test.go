// Benchmarks: one per table and figure of the paper's evaluation
// (DESIGN.md maps each to its experiment runner). Each benchmark
// regenerates the corresponding artifact end-to-end; solved workloads
// run at Scale 0.1 so the whole suite completes in minutes — run
// cmd/cimexperiments for the full-size numbers recorded in
// EXPERIMENTS.md.
package cimsa_test

import (
	"io"
	"testing"

	"cimsa"
	"cimsa/internal/experiments"
)

// benchCfg is the scaled configuration shared by the solve-heavy
// benchmarks.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{Seed: seed, Scale: 0.1, MCSamples: 150}
}

// BenchmarkFig1MemoryCapacity regenerates Fig. 1 (memory capacity vs
// TSP scale for the O(N⁴), O(N²) and O(N) designs).
func BenchmarkFig1MemoryCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable1ClusterStrategy regenerates Table I (cluster size and
// strategy exploration on pcb3038 and rl5915).
func BenchmarkTable1ClusterStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkFig6ErrorRate regenerates Fig. 6(b) (Monte Carlo pseudo-read
// error rate vs V_DD with the bit-line capacitance comparison).
func BenchmarkFig6ErrorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// fig7 runs the Fig. 7 panel once per benchmark iteration on a two-
// dataset subset and checks the panel named by sel is populated.
func fig7(b *testing.B, sel func(experiments.Fig7Point) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchCfg(uint64(i)), []string{"pcb3038", "rl5915"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for _, p := range r.Points {
				if sel(p) <= 0 {
					b.Fatalf("%s p=%d: empty metric", r.Dataset, p.PMax)
				}
			}
		}
	}
}

// BenchmarkFig7aOptimalRatio regenerates Fig. 7(a): solution quality per
// dataset and p_max with the arbitrary-clustering baseline.
func BenchmarkFig7aOptimalRatio(b *testing.B) {
	fig7(b, func(p experiments.Fig7Point) float64 { return p.OptimalRatio })
}

// BenchmarkFig7bArea regenerates Fig. 7(b): chip area per dataset/p_max.
func BenchmarkFig7bArea(b *testing.B) {
	fig7(b, func(p experiments.Fig7Point) float64 { return p.AreaMM2 })
}

// BenchmarkFig7cLatency regenerates Fig. 7(c): latency with the
// read/write breakdown.
func BenchmarkFig7cLatency(b *testing.B) {
	fig7(b, func(p experiments.Fig7Point) float64 { return p.ComputeSeconds + p.WriteSeconds })
}

// BenchmarkFig7dEnergy regenerates Fig. 7(d): dynamic energy with the
// read/write breakdown.
func BenchmarkFig7dEnergy(b *testing.B) {
	fig7(b, func(p experiments.Fig7Point) float64 { return p.ReadEnergyJ + p.WriteEnergyJ })
}

// BenchmarkTable2ArrayGeometry regenerates Table II (window size, array
// size and array area per p_max).
func BenchmarkTable2ArrayGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("expected 3 design points")
		}
	}
}

// BenchmarkTable3Comparison regenerates Table III (comparison with SOTA
// scalable annealers, physical and functionally normalized).
func BenchmarkTable3Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		area, power := experiments.Table3Improvement(rows)
		if area < 1e12 || power < 1e12 {
			b.Fatalf("normalized improvements too small: %g / %g", area, power)
		}
	}
}

// BenchmarkSpeedupVsCPU regenerates the §VI convergence-speedup
// comparison against the Concorde CPU baseline.
func BenchmarkSpeedupVsCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Speedup(benchCfg(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Speedup < 1e9 {
				b.Fatalf("%s speedup %g below 1e9", r.Dataset, r.Speedup)
			}
		}
	}
}

// BenchmarkAblationNoiseSource compares the randomness sources
// (noisy-CIM weights vs Metropolis vs greedy vs noisy spins).
func BenchmarkAblationNoiseSource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationModes(benchCfg(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedule compares the (V_DD, #LSB) annealing schedule
// against fixed-noise variants.
func BenchmarkAblationSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSchedule(benchCfg(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvePCB3038Full runs the complete annealer on the full-size
// pcb3038 workload (the paper's smallest evaluation instance).
func BenchmarkSolvePCB3038Full(b *testing.B) {
	in, err := cimsa.LoadNamed("pcb3038")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Length <= 0 {
			b.Fatal("no tour")
		}
	}
}

// BenchmarkRenderAll exercises every renderer (cheap; guards against
// formatting regressions in the report path).
func BenchmarkRenderAll(b *testing.B) {
	rows2, err := experiments.Table2()
	if err != nil {
		b.Fatal(err)
	}
	rows3, err := experiments.Table3()
	if err != nil {
		b.Fatal(err)
	}
	fig1 := experiments.Fig1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RenderFig1(io.Discard, fig1)
		experiments.RenderTable2(io.Discard, rows2)
		experiments.RenderTable3(io.Discard, rows3)
	}
}

// BenchmarkSolveParallelVsSequential measures the goroutine-parallel
// chromatic update against the sequential mode on a mid-size workload
// (results are bit-identical; only wall time differs).
func BenchmarkSolveParallelVsSequential(b *testing.B) {
	in := cimsa.GenerateInstance("bench-par", 5000, 1)
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"sequential", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := cimsa.Solve(in, cimsa.Options{
					Seed:         7,
					SkipHardware: true,
					Parallel:     mode.parallel,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Length <= 0 {
					b.Fatal("no tour")
				}
			}
		})
	}
}
