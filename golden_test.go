package cimsa_test

import (
	"hash/fnv"
	"testing"

	"cimsa"
)

// goldenCase pins the exact output of a default-fabric (sram) solve as
// it was before the Fabric interface extraction. The refactor's prime
// directive is that the default path stays bit-identical: same tour,
// same length, at every worker count. Any change to these values means
// the SRAM fabric's read math, seed derivation, or the proposal stream
// drifted — which silently invalidates every cached result and every
// published quality number.
type goldenCase struct {
	name     string
	n        int
	genSeed  uint64
	opts     cimsa.Options
	wantHash uint64  // FNV-1a over the tour's city sequence
	wantLen  float64 // exact float64 tour length
}

// tourFingerprint hashes the tour order with FNV-1a; any single
// transposition changes it.
func tourFingerprint(t cimsa.Tour) uint64 {
	h := fnv.New64a()
	for _, c := range t {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(c >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "pcb300-default", n: 300, genSeed: 7,
			opts:     cimsa.Options{Seed: 42, SkipHardware: true},
			wantHash: 0x3b8fdb68c590ba8d, wantLen: 1536,
		},
		{
			name: "rl500-restarts", n: 500, genSeed: 11,
			opts:     cimsa.Options{Seed: 9, Restarts: 2, SkipHardware: true},
			wantHash: 0x1fc2982820749649, wantLen: 3112,
		},
		{
			name: "uniform240-metropolis", n: 240, genSeed: 3,
			opts:     cimsa.Options{Seed: 5, Mode: "metropolis", SkipHardware: true},
			wantHash: 0x9939a0f47b20d9c5, wantLen: 2905,
		},
	}
}

// TestGoldenDefaultFabricBitIdentity solves each pinned case at several
// worker counts and compares the result bit-for-bit against values
// captured on the pre-refactor tree.
func TestGoldenDefaultFabricBitIdentity(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			in := cimsa.GenerateInstance(tc.name, tc.n, tc.genSeed)
			for _, workers := range []int{1, 2, 4, cimsa.WorkersAuto} {
				opts := tc.opts
				opts.Workers = workers
				if workers > 1 {
					opts.Parallel = true
				}
				rep, err := cimsa.Solve(in, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				gotHash := tourFingerprint(rep.Tour)
				if gotHash != tc.wantHash || rep.Length != tc.wantLen {
					t.Errorf("workers=%d: got (hash %#x, len %v), golden (hash %#x, len %v)",
						workers, gotHash, rep.Length, tc.wantHash, tc.wantLen)
				}
			}
		})
	}
}

// TestFabricWorkerDeterminism extends the bit-identity requirement to
// the non-default fabrics: a solve under any fabric must produce the
// same tour at every worker count, because every read is a pure
// function of (cell, supply, seed) — never of scheduling order. This is
// the solver-level half of the fabric conformance suite.
func TestFabricWorkerDeterminism(t *testing.T) {
	for _, fabric := range []string{"sram", "mram", "fefet", "clean"} {
		fabric := fabric
		t.Run(fabric, func(t *testing.T) {
			t.Parallel()
			in := cimsa.GenerateInstance("det-"+fabric, 200, 13)
			var refHash uint64
			var refLen float64
			for i, workers := range []int{1, 4} {
				opts := cimsa.Options{Seed: 21, SkipHardware: true, Fabric: fabric, Workers: workers}
				if workers > 1 {
					opts.Parallel = true
				}
				rep, err := cimsa.Solve(in, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if i == 0 {
					refHash, refLen = tourFingerprint(rep.Tour), rep.Length
					continue
				}
				if got := tourFingerprint(rep.Tour); got != refHash || rep.Length != refLen {
					t.Errorf("workers=%d diverged: (hash %#x, len %v) vs workers=1 (hash %#x, len %v)",
						workers, got, rep.Length, refHash, refLen)
				}
			}
		})
	}
}
