// Solve hot-loop benchmarks: sequential vs pooled-parallel full solves
// at ~1k/5k/10k cities, the perf trajectory every PR is measured
// against. Run them with
//
//	go test -bench BenchmarkSolveHotLoop -benchtime 3x .
//
// and regenerate the committed BENCH_solve.json snapshot with
//
//	CIMSA_EMIT_BENCH=1 go test -run TestEmitSolveBench .
//
// The pooled and sequential modes produce byte-identical tours (pinned
// by TestWorkerCountDeterminism in internal/clustered); only wall time
// may differ.
package cimsa_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cimsa"
)

// benchSizes are the hot-loop workload sizes (cities). The largest
// point matches pla85900, the biggest TSPLIB instance the paper's
// scaling argument targets.
var benchSizes = []int{1000, 5000, 10000, 85900}

// benchModes are the execution modes the harness compares. "auto" is
// Workers=WorkersAuto: the solver picks sequential or pooled per level
// from the instance size, so it should track the better of the other
// two at every size.
var benchModes = []struct {
	name    string
	options cimsa.Options
}{
	{"sequential", cimsa.Options{Seed: 7, SkipHardware: true}},
	{"pooled", cimsa.Options{Seed: 7, SkipHardware: true, Parallel: true}},
	{"auto", cimsa.Options{Seed: 7, SkipHardware: true, Workers: cimsa.WorkersAuto}},
}

func solveOnce(tb testing.TB, in *cimsa.Instance, opt cimsa.Options) {
	tb.Helper()
	rep, err := cimsa.Solve(in, opt)
	if err != nil {
		tb.Fatal(err)
	}
	if rep.Length <= 0 {
		tb.Fatal("no tour")
	}
}

// BenchmarkSolveHotLoop runs every (mode, size) combination as a
// sub-benchmark, e.g. BenchmarkSolveHotLoop/pooled-5000.
func BenchmarkSolveHotLoop(b *testing.B) {
	for _, size := range benchSizes {
		in := cimsa.GenerateInstance(fmt.Sprintf("bench-hot-%d", size), size, 1)
		for _, mode := range benchModes {
			b.Run(fmt.Sprintf("%s-%d", mode.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveOnce(b, in, mode.options)
				}
			})
		}
	}
}

// benchResult is one BENCH_solve.json entry.
type benchResult struct {
	Cities  int     `json:"cities"`
	Mode    string  `json:"mode"`
	Seconds float64 `json:"seconds_per_solve"`
}

type benchFile struct {
	Generated  string        `json:"generated"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note"`
	Results    []benchResult `json:"results"`
	// SeedReference pins the pre-worker-pool baseline (per-phase
	// goroutine spawn + WaitGroup, per-cell noise rate evaluation) so
	// the speedup is visible without checking out the old tree.
	SeedReference seedReference `json:"seed_reference"`
}

// seedReference was measured once on this hardware at GOMAXPROCS=4
// from the tree before the worker-pool rewrite (best of 3 solves of
// the same 5000-city instance). It is a historical constant, not
// re-measured by the emitter.
type seedReference struct {
	Cities            int     `json:"cities"`
	SequentialSeconds float64 `json:"sequential_seconds_per_solve"`
	ParallelSeconds   float64 `json:"parallel_seconds_per_solve"`
	Note              string  `json:"note"`
}

// TestEmitSolveBench measures the hot loop at every (mode, size) point
// and writes BENCH_solve.json in the repo root (or the path named by
// CIMSA_BENCH_OUT, so CI can measure without dirtying the checkout).
// The committed file is the perf record for the PR trail; the CI
// bench-gate job (cmd/benchgate) compares a fresh measurement against
// it and fails on pooled-dispatch regressions. Only runs when
// CIMSA_EMIT_BENCH=1 is set.
func TestEmitSolveBench(t *testing.T) {
	if os.Getenv("CIMSA_EMIT_BENCH") == "" {
		t.Skip("set CIMSA_EMIT_BENCH=1 to measure and write BENCH_solve.json")
	}
	const reps = 3
	out := benchFile{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note:       "best of " + fmt.Sprint(reps) + " full solves per point; pooled ≡ sequential tours byte-for-byte",
		SeedReference: seedReference{
			Cities:            5000,
			SequentialSeconds: 0.382,
			ParallelSeconds:   0.444,
			Note:              "pre-pool baseline (goroutine-per-phase), GOMAXPROCS=4",
		},
	}
	for _, size := range benchSizes {
		in := cimsa.GenerateInstance(fmt.Sprintf("bench-hot-%d", size), size, 1)
		for _, mode := range benchModes {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				start := time.Now()
				solveOnce(t, in, mode.options)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			out.Results = append(out.Results, benchResult{
				Cities: size, Mode: mode.name, Seconds: best.Seconds(),
			})
			t.Logf("%s-%d: %v", mode.name, size, best)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := os.Getenv("CIMSA_BENCH_OUT")
	if path == "" {
		path = "BENCH_solve.json"
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
