package cimsa_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cimsa"
)

func ckptOptions(dir string) cimsa.Options {
	return cimsa.Options{
		PMax:         3,
		Seed:         9,
		SkipHardware: true,
		Checkpoint:   cimsa.Checkpoint{Dir: dir},
	}
}

// TestFacadeCheckpointResume interrupts a solve through the facade,
// resumes from the on-disk file, and checks the result is
// bit-identical to the uninterrupted run — the end-to-end contract of
// Options.Checkpoint.
func TestFacadeCheckpointResume(t *testing.T) {
	in := cimsa.GenerateInstance("facade-ckpt", 240, 3)
	want, err := cimsa.Solve(in, ckptOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt := ckptOptions(dir)
	writes := 0
	var path string
	opt.Checkpoint.OnWrite = func(p string) { writes++; path = p }
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	opt.Progress = func(cimsa.ProgressEvent) {
		events++
		if events == 4 {
			cancel()
		}
	}
	if _, err := cimsa.SolveContext(ctx, in, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: got %v", err)
	}
	if writes == 0 || path == "" {
		t.Fatal("no checkpoint was written before the interrupt")
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("checkpoint %q landed outside %q", path, dir)
	}

	opt = ckptOptions(dir)
	opt.Checkpoint.Resume = true
	resumed := ""
	opt.Checkpoint.OnResume = func(p string) { resumed = p }
	got, err := cimsa.Solve(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != path {
		t.Fatalf("OnResume saw %q, checkpoint was %q", resumed, path)
	}
	if !reflect.DeepEqual(got.Tour, want.Tour) || got.Length != want.Length || got.Solver != want.Solver {
		t.Fatal("resumed solve differs from uninterrupted solve")
	}
}

// TestFacadeResumeFreshStart: Resume with no file present just runs.
func TestFacadeResumeFreshStart(t *testing.T) {
	in := cimsa.GenerateInstance("facade-ckpt-fresh", 160, 3)
	opt := ckptOptions(t.TempDir())
	opt.Checkpoint.Resume = true
	resumed := false
	opt.Checkpoint.OnResume = func(string) { resumed = true }
	want, err := cimsa.Solve(in, cimsa.Options{PMax: 3, Seed: 9, SkipHardware: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cimsa.Solve(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("OnResume fired with no checkpoint on disk")
	}
	if !reflect.DeepEqual(got.Tour, want.Tour) {
		t.Fatal("checkpointed fresh run differs from plain run")
	}
}

// TestFacadeResumeRejectsCorrupt overwrites the checkpoint with
// garbage: the resume must fail with a diagnostic naming the file, not
// silently anneal from scratch or from bad state.
func TestFacadeResumeRejectsCorrupt(t *testing.T) {
	in := cimsa.GenerateInstance("facade-ckpt-bad", 160, 3)
	dir := t.TempDir()
	opt := ckptOptions(dir)
	var path string
	opt.Checkpoint.OnWrite = func(p string) { path = p }
	if _, err := cimsa.Solve(in, opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opt = ckptOptions(dir)
	opt.Checkpoint.Resume = true
	_, err = cimsa.Solve(in, opt)
	if err == nil {
		t.Fatal("corrupt checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("diagnostic %q does not name the file", err)
	}
}

// TestFacadeResumeRejectsCrossFabric writes a checkpoint under the
// default SRAM fabric, then tries to resume it under MRAM: the
// bit-flip streams differ, so a silent resume would diverge from both
// uninterrupted runs. The resume must fail with an ErrMismatch
// diagnostic naming the fabric, and a same-fabric control must still
// resume cleanly from the identical file.
func TestFacadeResumeRejectsCrossFabric(t *testing.T) {
	in := cimsa.GenerateInstance("facade-ckpt-fabric", 200, 3)
	dir := t.TempDir()
	opt := ckptOptions(dir)
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	opt.Progress = func(cimsa.ProgressEvent) {
		events++
		if events == 4 {
			cancel()
		}
	}
	if _, err := cimsa.SolveContext(ctx, in, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: got %v", err)
	}

	cross := ckptOptions(dir)
	cross.Fabric = "mram"
	cross.Checkpoint.Resume = true
	_, err := cimsa.Solve(in, cross)
	if err == nil {
		t.Fatal("checkpoint annealed under sram resumed under mram")
	}
	if !strings.Contains(err.Error(), "fabric") {
		t.Fatalf("diagnostic %q does not name the fabric", err)
	}

	same := ckptOptions(dir)
	same.Checkpoint.Resume = true
	resumed := false
	same.Checkpoint.OnResume = func(string) { resumed = true }
	if _, err := cimsa.Solve(in, same); err != nil {
		t.Fatalf("same-fabric control failed to resume: %v", err)
	}
	if !resumed {
		t.Fatal("same-fabric control did not resume from the checkpoint")
	}
}

// TestFacadeCheckpointCadence: EveryEpochs thins epoch snapshots.
func TestFacadeCheckpointCadence(t *testing.T) {
	in := cimsa.GenerateInstance("facade-ckpt-cadence", 160, 3)
	count := func(every int) int {
		opt := ckptOptions(t.TempDir())
		opt.Checkpoint.EveryEpochs = every
		writes := 0
		opt.Checkpoint.OnWrite = func(string) { writes++ }
		if _, err := cimsa.Solve(in, opt); err != nil {
			t.Fatal(err)
		}
		return writes
	}
	all, thinned := count(1), count(4)
	if all == 0 || thinned == 0 {
		t.Fatalf("no writes (every=1: %d, every=4: %d)", all, thinned)
	}
	if thinned >= all {
		t.Fatalf("EveryEpochs=4 wrote %d snapshots, every-epoch wrote %d", thinned, all)
	}
}

// TestCheckpointOptionValidation: the facade's single Validate path
// covers the checkpoint fields too.
func TestCheckpointOptionValidation(t *testing.T) {
	bad := []cimsa.Options{
		{Checkpoint: cimsa.Checkpoint{EveryEpochs: -1, Dir: "x"}},
		{Checkpoint: cimsa.Checkpoint{Resume: true}},
		{Checkpoint: cimsa.Checkpoint{EveryEpochs: 2}},
	}
	for i, opt := range bad {
		if err := opt.Validate(); err == nil {
			t.Errorf("case %d: invalid checkpoint options accepted", i)
		}
	}
	ok := cimsa.Options{Checkpoint: cimsa.Checkpoint{Dir: "x", Resume: true, EveryEpochs: 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid checkpoint options rejected: %v", err)
	}
}
